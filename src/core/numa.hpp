// numa.hpp — ccNUMA topology reporting.
//
// The paper (Section V): "An important feature missing in likwid-topology
// is to include NUMA information in the output." This module implements
// that near-term goal: one NUMA domain per socket on the modeled machines,
// with processor membership, local memory size and the inter-domain
// distance matrix (the /sys/devices/system/node analog, served here by the
// simulated kernel).
#pragma once

#include <vector>

#include "ossim/kernel.hpp"

namespace likwid::core {

struct NumaDomain {
  int id = 0;
  std::vector<int> processors;    ///< os ids with local access
  double memory_total_gb = 0;     ///< local memory size
  double memory_free_gb = 0;
  /// Relative access distances to every domain (10 = local, as in ACPI
  /// SLIT tables; remote values derive from the machine's NUMA penalty).
  std::vector<int> distances;
};

struct NumaTopology {
  std::vector<NumaDomain> domains;

  int num_domains() const { return static_cast<int>(domains.size()); }
  /// Domain owning a given hardware thread; throws kNotFound if absent.
  int domain_of(int os_id) const;
};

/// Probe the node's NUMA layout (the OS-interface counterpart of
/// probe_topology's cpuid decoding).
NumaTopology probe_numa(const ossim::SimKernel& kernel);

}  // namespace likwid::core
