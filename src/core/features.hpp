// features.hpp — likwid-features: view and toggle switchable processor
// features, most importantly the hardware prefetchers, through the
// IA32_MISC_ENABLE MSR (Core 2 semantics).
//
// The paper's tool "currently only works for Intel Core 2 processors"; this
// implementation accepts any Intel part that exposes IA32_MISC_ENABLE and
// rejects AMD with kUnsupported, mirroring the published behaviour.
#pragma once

#include <string>
#include <vector>

#include "ossim/kernel.hpp"

namespace likwid::core {

/// The four toggleable prefetchers, with the tool's option names.
enum class Prefetcher {
  kHardware,      ///< HW_PREFETCHER   (L2 streamer)
  kAdjacentLine,  ///< CL_PREFETCHER   (adjacent cache line)
  kDcu,           ///< DCU_PREFETCHER  (L1 streaming)
  kIp,            ///< IP_PREFETCHER   (L1 stride by instruction pointer)
};

/// Parse "HW_PREFETCHER", "CL_PREFETCHER", "DCU_PREFETCHER", "IP_PREFETCHER".
Prefetcher parse_prefetcher(const std::string& name);
std::string_view to_string(Prefetcher p) noexcept;

/// One line of the features report.
struct FeatureState {
  std::string name;   ///< display name ("Hardware Prefetcher", ...)
  std::string state;  ///< "enabled" / "disabled" / "supported" / ...
};

class Features {
 public:
  /// Operates on one hardware thread (the register is per-core).
  /// Throws Error(kUnsupported) on non-Intel machines.
  Features(ossim::SimKernel& kernel, int cpu);

  /// The report of likwid-features (paper Section II-D listing).
  std::vector<FeatureState> report() const;

  bool prefetcher_enabled(Prefetcher p) const;

  /// Enable (-e) or disable (-u) a prefetcher. The write lands in
  /// IA32_MISC_ENABLE and immediately changes cache-simulator behaviour.
  void set_prefetcher(Prefetcher p, bool enable);

  int cpu() const { return cpu_; }

 private:
  unsigned disable_bit(Prefetcher p) const;

  ossim::SimKernel& kernel_;
  int cpu_;
};

}  // namespace likwid::core
