#include "core/batch_program.hpp"

#include <bit>
#include <map>
#include <tuple>

#include "core/metric_abstract.hpp"
#include "util/status.hpp"

namespace likwid::core {

double MetricBatch::RowView::at(int cpu) const {
  if (cpus != nullptr) {
    for (std::size_t r = 0; r < cpus->size(); ++r) {
      if ((*cpus)[r] == cpu) return values[r];
    }
  }
  throw_error(ErrorCode::kNotFound,
              "cpu " + std::to_string(cpu) + " is not measured by this row");
}

double MetricBatch::RowView::value_or(int cpu,
                                      double fallback) const noexcept {
  if (cpus != nullptr) {
    for (std::size_t r = 0; r < cpus->size(); ++r) {
      if ((*cpus)[r] == cpu) return values[r];
    }
  }
  return fallback;
}

BatchProgram BatchProgram::fuse(
    std::span<const CompiledMetric* const> programs, std::size_t slab_slots) {
  BatchProgram fused;
  fused.slab_slots_ = slab_slots;
  fused.roots_.reserve(programs.size());
  fused.div_sites_.resize(programs.size());

  // Value numbering: a step is identified by (op, operand steps, payload),
  // so structurally identical subtrees — within one formula or across the
  // whole group — collapse to one step. Constants key on their exact bit
  // pattern (distinct NaNs and -0.0 stay distinct).
  using Key = std::tuple<std::uint8_t, std::int32_t, std::int32_t,
                         std::uint64_t>;
  std::map<Key, std::int32_t> numbering;
  const auto emit = [&](Step step) -> std::int32_t {
    std::uint64_t payload = 0;
    switch (step.op) {
      case StepOp::kConst:
        payload = std::bit_cast<std::uint64_t>(step.value);
        break;
      case StepOp::kReg:
        payload = static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(step.reg));
        break;
      default:
        break;
    }
    const Key key{static_cast<std::uint8_t>(step.op), step.a, step.b,
                  payload};
    const auto [it, inserted] =
        numbering.emplace(key, static_cast<std::int32_t>(fused.steps_.size()));
    if (inserted) fused.steps_.push_back(step);
    return it->second;
  };

  std::vector<std::int32_t> stack;
  for (std::size_t p = 0; p < programs.size(); ++p) {
    const CompiledMetric* program = programs[p];
    LIKWID_ASSERT(program != nullptr, "null program handed to fuse");
    fused.fused_instructions_ += program->code_.size();
    stack.clear();
    for (const CompiledMetric::Instr& ins : program->code_) {
      switch (ins.op) {
        case CompiledMetric::Op::kPushConst: {
          Step s{StepOp::kConst};
          s.value = ins.value;
          stack.push_back(emit(s));
          break;
        }
        case CompiledMetric::Op::kPushReg: {
          Step s{StepOp::kReg};
          s.reg = ins.reg;
          // The two trailing registers are the `time` and `clock`
          // built-ins — they get their own ops because their values come
          // from the binding, not the slab.
          if (ins.reg == static_cast<std::int32_t>(slab_slots)) {
            s.op = StepOp::kTime;
          } else if (ins.reg == static_cast<std::int32_t>(slab_slots) + 1) {
            s.op = StepOp::kClock;
          }
          stack.push_back(emit(s));
          break;
        }
        case CompiledMetric::Op::kAdd:
        case CompiledMetric::Op::kSub:
        case CompiledMetric::Op::kMul:
        case CompiledMetric::Op::kDiv: {
          LIKWID_ASSERT(stack.size() >= 2, "fuse underflow on binary op");
          Step s{StepOp::kAdd};
          switch (ins.op) {
            case CompiledMetric::Op::kSub: s.op = StepOp::kSub; break;
            case CompiledMetric::Op::kMul: s.op = StepOp::kMul; break;
            case CompiledMetric::Op::kDiv: s.op = StepOp::kDiv; break;
            default: break;
          }
          s.b = stack.back();
          stack.pop_back();
          s.a = stack.back();
          stack.pop_back();
          const std::int32_t id = emit(s);
          if (s.op == StepOp::kDiv) fused.div_sites_[p].push_back(id);
          stack.push_back(id);
          break;
        }
        case CompiledMetric::Op::kNeg: {
          LIKWID_ASSERT(!stack.empty(), "fuse underflow on negate");
          Step s{StepOp::kNeg};
          s.a = stack.back();
          stack.pop_back();
          stack.push_back(emit(s));
          break;
        }
      }
    }
    fused.roots_.push_back(stack.empty() ? -1 : stack.back());
  }
  return fused;
}

namespace {

/// One binary step over uniform/column operands. Each variant performs the
/// exact per-element double operation the scalar interpreter performs —
/// the uniform x uniform case computes it once, which is bitwise the same
/// result for every row.
template <typename BinOp>
void eval_binary(const BinOp& op, bool a_uniform, double a_scalar,
                 const double* a_col, bool b_uniform, double b_scalar,
                 const double* b_col, std::size_t rows, bool& out_uniform,
                 double& out_scalar, double* out_col) {
  if (a_uniform && b_uniform) {
    out_uniform = true;
    out_scalar = op(a_scalar, b_scalar);
    return;
  }
  out_uniform = false;
  if (a_uniform) {
    for (std::size_t r = 0; r < rows; ++r) {
      out_col[r] = op(a_scalar, b_col[r]);
    }
  } else if (b_uniform) {
    for (std::size_t r = 0; r < rows; ++r) {
      out_col[r] = op(a_col[r], b_scalar);
    }
  } else {
    for (std::size_t r = 0; r < rows; ++r) {
      out_col[r] = op(a_col[r], b_col[r]);
    }
  }
}

}  // namespace

void BatchProgram::evaluate(const BatchBinding& binding, std::size_t rows,
                            BatchScratch& scratch,
                            std::span<double> out) const {
  LIKWID_ASSERT(out.size() == num_metrics() * rows,
                "batch output span does not match num_metrics x rows");
  const bool have_slab =
      binding.counts != nullptr && !binding.counts->empty();
  LIKWID_ASSERT(!have_slab || binding.counts->slots() == slab_slots_,
                "count slab does not match the fused program");
  LIKWID_ASSERT(binding.row_map.empty() || binding.row_map.size() == rows,
                "row map does not match the output row count");

  const std::size_t steps = steps_.size();
  scratch.columns.resize(steps * rows);
  scratch.uniform.resize(steps);
  scratch.uniform_flag.resize(steps);

  const double* slab = have_slab ? binding.counts->data().data() : nullptr;
  const std::size_t stride = have_slab ? binding.counts->slots() : 0;
  const int* map = binding.row_map.empty() ? nullptr : binding.row_map.data();
  const auto slab_value = [&](std::size_t r, std::size_t slot) -> double {
    const std::ptrdiff_t srow =
        map ? map[r] : static_cast<std::ptrdiff_t>(r);
    if (srow < 0) return 0.0;
    return slab[static_cast<std::size_t>(srow) * stride + slot];
  };

  for (std::size_t i = 0; i < steps; ++i) {
    const Step& s = steps_[i];
    double* col = scratch.columns.data() + i * rows;
    bool uniform = false;
    double scalar = 0.0;
    switch (s.op) {
      case StepOp::kConst:
        uniform = true;
        scalar = s.value;
        break;
      case StepOp::kClock:
        uniform = true;
        scalar = binding.clock_hz;
        break;
      case StepOp::kReg:
        if (!have_slab) {
          uniform = true;  // every row reads 0.0 — uncovered-cpu semantics
        } else {
          const auto slot = static_cast<std::size_t>(s.reg);
          for (std::size_t r = 0; r < rows; ++r) {
            col[r] = slab_value(r, slot);
          }
        }
        break;
      case StepOp::kTime:
        if (binding.time_slot < 0) {
          uniform = true;
          scalar = binding.time_value;
        } else if (!have_slab) {
          // Scalar path: time = regs[cycles_slot] / clock with the
          // register zero-filled; same division, row-invariant.
          uniform = true;
          scalar = 0.0 / binding.clock_hz;
        } else {
          const auto slot = static_cast<std::size_t>(binding.time_slot);
          for (std::size_t r = 0; r < rows; ++r) {
            col[r] = slab_value(r, slot) / binding.clock_hz;
          }
        }
        break;
      case StepOp::kNeg: {
        const auto a = static_cast<std::size_t>(s.a);
        if (scratch.uniform_flag[a]) {
          uniform = true;
          scalar = -scratch.uniform[a];
        } else {
          const double* src = scratch.columns.data() + a * rows;
          for (std::size_t r = 0; r < rows; ++r) col[r] = -src[r];
        }
        break;
      }
      case StepOp::kAdd:
      case StepOp::kSub:
      case StepOp::kMul:
      case StepOp::kDiv: {
        const auto a = static_cast<std::size_t>(s.a);
        const auto b = static_cast<std::size_t>(s.b);
        const bool au = scratch.uniform_flag[a] != 0;
        const bool bu = scratch.uniform_flag[b] != 0;
        const double as = scratch.uniform[a];
        const double bs = scratch.uniform[b];
        const double* ac = scratch.columns.data() + a * rows;
        const double* bc = scratch.columns.data() + b * rows;
        switch (s.op) {
          case StepOp::kAdd:
            eval_binary([](double x, double y) { return x + y; }, au, as, ac,
                        bu, bs, bc, rows, uniform, scalar, col);
            break;
          case StepOp::kSub:
            eval_binary([](double x, double y) { return x - y; }, au, as, ac,
                        bu, bs, bc, rows, uniform, scalar, col);
            break;
          case StepOp::kMul:
            eval_binary([](double x, double y) { return x * y; }, au, as, ac,
                        bu, bs, bc, rows, uniform, scalar, col);
            break;
          default:
            eval_binary(
                [](double x, double y) { return y == 0.0 ? 0.0 : x / y; },
                au, as, ac, bu, bs, bc, rows, uniform, scalar, col);
            break;
        }
        break;
      }
    }
    scratch.uniform_flag[i] = uniform ? 1 : 0;
    scratch.uniform[i] = scalar;
  }

  for (std::size_t m = 0; m < roots_.size(); ++m) {
    double* dst = out.data() + m * rows;
    const std::int32_t root = roots_[m];
    if (root < 0) {
      for (std::size_t r = 0; r < rows; ++r) dst[r] = 0.0;
    } else if (scratch.uniform_flag[static_cast<std::size_t>(root)]) {
      const double v = scratch.uniform[static_cast<std::size_t>(root)];
      for (std::size_t r = 0; r < rows; ++r) dst[r] = v;
    } else {
      const double* src =
          scratch.columns.data() + static_cast<std::size_t>(root) * rows;
      for (std::size_t r = 0; r < rows; ++r) dst[r] = src[r];
    }
  }
}

std::vector<std::vector<CompiledMetric::DivisionRisk>>
BatchProgram::division_risks(const std::vector<bool>& nonzero_regs) const {
  // Abstract value per step, memoized in DAG order — shared subtrees are
  // analyzed once but report once per original division site below.
  std::vector<AbstractValue> values;
  values.reserve(steps_.size());
  for (const Step& s : steps_) {
    switch (s.op) {
      case StepOp::kConst:
        values.push_back(abstract_const(s.value));
        break;
      case StepOp::kReg:
      case StepOp::kTime:
      case StepOp::kClock: {
        // kTime/kClock carry their pseudo-register index (slots, slots+1)
        // so the lattice sees exactly the scalar analysis's kPushReg.
        const auto reg = static_cast<std::size_t>(s.reg);
        const bool nonzero = reg < nonzero_regs.size() && nonzero_regs[reg];
        values.push_back(abstract_reg(s.reg, nonzero));
        break;
      }
      case StepOp::kAdd:
        values.push_back(abstract_add(values[static_cast<std::size_t>(s.a)],
                                      values[static_cast<std::size_t>(s.b)]));
        break;
      case StepOp::kSub:
        values.push_back(abstract_sub(values[static_cast<std::size_t>(s.a)],
                                      values[static_cast<std::size_t>(s.b)]));
        break;
      case StepOp::kMul:
        values.push_back(abstract_mul(values[static_cast<std::size_t>(s.a)],
                                      values[static_cast<std::size_t>(s.b)]));
        break;
      case StepOp::kDiv:
        values.push_back(abstract_div(values[static_cast<std::size_t>(s.a)],
                                      values[static_cast<std::size_t>(s.b)]));
        break;
      case StepOp::kNeg:
        values.push_back(abstract_neg(values[static_cast<std::size_t>(s.a)]));
        break;
    }
  }

  std::vector<std::vector<CompiledMetric::DivisionRisk>> risks(roots_.size());
  for (std::size_t m = 0; m < div_sites_.size(); ++m) {
    for (const std::int32_t site : div_sites_[m]) {
      const Step& div = steps_[static_cast<std::size_t>(site)];
      const AbstractValue& divisor =
          values[static_cast<std::size_t>(div.b)];
      if (!divisor.may_zero) continue;
      CompiledMetric::DivisionRisk risk;
      risk.certain = divisor.always_zero;
      risk.cancellation = divisor.has_sub;
      risk.registers = divisor.regs;
      risks[m].push_back(std::move(risk));
    }
  }
  return risks;
}

}  // namespace likwid::core
