#include "core/metric_expr.hpp"

#include <cctype>
#include <cmath>
#include <set>

#include "util/status.hpp"

namespace likwid::core {

struct MetricExpr::Node {
  enum class Kind { kNumber, kVariable, kAdd, kSub, kMul, kDiv, kNeg };
  Kind kind;
  double number = 0;
  std::string variable;
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;
};

namespace {

using Node = MetricExpr::Node;
using NodePtr = std::shared_ptr<const Node>;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  NodePtr parse() {
    NodePtr e = expression();
    skip_ws();
    if (pos_ != text_.size()) fail("unexpected trailing input");
    return e;
  }

  void collect_vars(const NodePtr& node, std::set<std::string>& out) {
    if (!node) return;
    if (node->kind == Node::Kind::kVariable) out.insert(node->variable);
    collect_vars(node->lhs, out);
    collect_vars(node->rhs, out);
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw_error(ErrorCode::kInvalidArgument,
                "metric formula error at position " + std::to_string(pos_) +
                    ": " + why + " in '" + std::string(text_) + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  NodePtr expression() {
    NodePtr lhs = term();
    while (true) {
      if (consume('+')) {
        lhs = binary(Node::Kind::kAdd, lhs, term());
      } else if (consume('-')) {
        lhs = binary(Node::Kind::kSub, lhs, term());
      } else {
        return lhs;
      }
    }
  }

  NodePtr term() {
    NodePtr lhs = factor();
    while (true) {
      if (consume('*')) {
        lhs = binary(Node::Kind::kMul, lhs, factor());
      } else if (consume('/')) {
        lhs = binary(Node::Kind::kDiv, lhs, factor());
      } else {
        return lhs;
      }
    }
  }

  NodePtr factor() {
    if (consume('-')) {
      auto n = std::make_shared<Node>();
      n->kind = Node::Kind::kNeg;
      n->lhs = factor();
      return n;
    }
    if (consume('(')) {
      NodePtr inner = expression();
      if (!consume(')')) fail("missing ')'");
      return inner;
    }
    const char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return identifier();
    }
    fail("expected number, identifier or '('");
  }

  NodePtr number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      ++pos_;
    }
    // Exponent: e/E followed by optional sign and digits.
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      std::size_t exp_pos = pos_ + 1;
      if (exp_pos < text_.size() &&
          (text_[exp_pos] == '+' || text_[exp_pos] == '-')) {
        ++exp_pos;
      }
      if (exp_pos < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[exp_pos]))) {
        pos_ = exp_pos;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    auto n = std::make_shared<Node>();
    n->kind = Node::Kind::kNumber;
    n->number = value;
    return n;
  }

  NodePtr identifier() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    auto n = std::make_shared<Node>();
    n->kind = Node::Kind::kVariable;
    n->variable = std::string(text_.substr(start, pos_ - start));
    return n;
  }

  static NodePtr binary(Node::Kind kind, NodePtr lhs, NodePtr rhs) {
    auto n = std::make_shared<Node>();
    n->kind = kind;
    n->lhs = std::move(lhs);
    n->rhs = std::move(rhs);
    return n;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

double eval_node(const Node& node, const std::map<std::string, double>& vars) {
  switch (node.kind) {
    case Node::Kind::kNumber:
      return node.number;
    case Node::Kind::kVariable: {
      const auto it = vars.find(node.variable);
      if (it == vars.end()) {
        throw_error(ErrorCode::kNotFound,
                    "metric variable '" + node.variable + "' is not bound");
      }
      return it->second;
    }
    case Node::Kind::kAdd:
      return eval_node(*node.lhs, vars) + eval_node(*node.rhs, vars);
    case Node::Kind::kSub:
      return eval_node(*node.lhs, vars) - eval_node(*node.rhs, vars);
    case Node::Kind::kMul:
      return eval_node(*node.lhs, vars) * eval_node(*node.rhs, vars);
    case Node::Kind::kDiv: {
      const double denom = eval_node(*node.rhs, vars);
      if (denom == 0.0) return 0.0;
      return eval_node(*node.lhs, vars) / denom;
    }
    case Node::Kind::kNeg:
      return -eval_node(*node.lhs, vars);
  }
  return 0.0;
}

}  // namespace

MetricExpr MetricExpr::parse(std::string_view text) {
  Parser parser(text);
  MetricExpr expr;
  expr.text_ = std::string(text);
  expr.root_ = parser.parse();
  std::set<std::string> vars;
  parser.collect_vars(expr.root_, vars);
  expr.variables_.assign(vars.begin(), vars.end());
  return expr;
}

double MetricExpr::evaluate(const std::map<std::string, double>& vars) const {
  LIKWID_ASSERT(root_ != nullptr, "evaluate of empty expression");
  return eval_node(*root_, vars);
}

/// Post-order lowering of the AST into the flat program; tracks the
/// operand-stack high-water mark as it emits.
struct MetricCompiler {
  const MetricExpr::RegisterResolver& reg_of;
  CompiledMetric& out;
  int depth = 0;

  void push(CompiledMetric::Instr instr) {
    out.code_.push_back(instr);
    ++depth;
    if (depth > out.max_depth_) out.max_depth_ = depth;
    if (out.max_depth_ > CompiledMetric::kMaxStack) {
      throw_error(ErrorCode::kResourceExhausted,
                  "metric formula needs more than " +
                      std::to_string(CompiledMetric::kMaxStack) +
                      " operand stack slots");
    }
  }

  void lower(const Node& node) {
    using Op = CompiledMetric::Op;
    switch (node.kind) {
      case Node::Kind::kNumber:
        push({Op::kPushConst, 0, node.number});
        return;
      case Node::Kind::kVariable: {
        const int reg = reg_of(node.variable);
        if (reg < 0) {
          throw_error(ErrorCode::kNotFound,
                      "metric variable '" + node.variable + "' is not bound");
        }
        push({Op::kPushReg, reg, 0});
        return;
      }
      case Node::Kind::kNeg:
        lower(*node.lhs);
        out.code_.push_back({Op::kNeg, 0, 0});
        return;
      case Node::Kind::kAdd:
      case Node::Kind::kSub:
      case Node::Kind::kMul:
      case Node::Kind::kDiv: {
        lower(*node.lhs);
        lower(*node.rhs);
        const Op op = node.kind == Node::Kind::kAdd   ? Op::kAdd
                      : node.kind == Node::Kind::kSub ? Op::kSub
                      : node.kind == Node::Kind::kMul ? Op::kMul
                                                      : Op::kDiv;
        out.code_.push_back({op, 0, 0});
        --depth;  // two operands replaced by one result
        return;
      }
    }
  }
};

CompiledMetric MetricExpr::compile(const RegisterResolver& reg_of) const {
  LIKWID_ASSERT(root_ != nullptr, "compile of empty expression");
  CompiledMetric program;
  MetricCompiler compiler{reg_of, program};
  compiler.lower(*root_);
  return program;
}

}  // namespace likwid::core
