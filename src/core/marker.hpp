// marker.hpp — the instrumentation ("marker") API of likwid-perfctr.
//
// The paper's usage model:
//
//   likwid_markerInit(numberOfThreads, numberOfRegions);
//   int mainId = likwid_markerRegisterRegion("Main");
//   likwid_markerStartRegion(threadId, coreId);
//   ... measured code ...
//   likwid_markerStopRegion(threadId, coreId, mainId);
//   likwid_markerClose();
//
// Event counts accumulate automatically over multiple start/stop pairs of
// the same region; nesting or partial overlap of regions is not allowed
// (enforced here with errors, where the real library corrupts silently).
// MarkerSession is the object API; MarkerEnv bundles one session's worth
// of marker state (counters, current-cpu callback, the live session) so
// several embedded sessions can carry independent marker state; likwid.hpp
// provides the C-style shim bound to ONE ambient MarkerEnv, exactly as the
// tool's preloaded environment does for real programs.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/perfctr.hpp"

namespace likwid::core {

class MarkerSession {
 public:
  /// `ctr` must outlive the session and must have its event set configured
  /// and started (the tool does this before launching the program).
  MarkerSession(PerfCtr& ctr, int num_threads, int num_regions);

  /// Register (or look up) a named region; returns its region id.
  /// Throws Error(kResourceExhausted) beyond num_regions.
  int register_region(const std::string& name);

  /// Begin measurement of a region on `core_id` for `thread_id`.
  /// Throws Error(kInvalidState) if that thread already has an open region
  /// (no nesting / no overlap, per the paper).
  void start_region(int thread_id, int core_id);

  /// Close the open region, accumulating counter deltas and elapsed time
  /// into `region_id` for that core.
  void stop_region(int thread_id, int core_id, int region_id);

  /// Finish the session; after close() no further starts are accepted.
  void close();

  struct RegionResults {
    std::string name;
    /// Event set the slab's slots belong to (the ctr's current set when
    /// the region was registered).
    int event_set = 0;
    /// Accumulated counter deltas, cpu row x slot of `event_set`
    /// (zero rows for cores that never entered the region).
    CountSlab counts;
    /// cpu -> accumulated wall time the region was open
    std::map<int, double> seconds;
    int call_count = 0;
  };
  const std::vector<RegionResults>& regions() const { return regions_; }
  const RegionResults& region(int region_id) const;

  int num_threads() const { return num_threads_; }
  bool closed() const { return closed_; }

 private:
  struct OpenRegion {
    CounterSnapshot snapshot;
    double start_seconds = 0;
    int core_id = -1;
    bool open = false;
  };

  PerfCtr& ctr_;
  int num_threads_;
  int max_regions_;
  bool closed_ = false;
  std::vector<RegionResults> regions_;
  std::vector<OpenRegion> open_;  ///< per thread id
};

/// One session's worth of marker state: the measured counters, the
/// current-cpu callback (the sched_getcpu analog injected by the harness)
/// and the MarkerSession created by init(). Where the pre-facade code kept
/// this process-global, every likwid::Session now owns its own MarkerEnv;
/// the global MarkerBinding shim merely points at one ambient env.
class MarkerEnv {
 public:
  explicit MarkerEnv(std::string owner = "anonymous") : owner_(std::move(owner)) {}

  MarkerEnv(const MarkerEnv&) = delete;
  MarkerEnv& operator=(const MarkerEnv&) = delete;

  /// Attach counters and the calling-thread cpu callback. `ctr` must be
  /// configured before regions are entered. Throws Error(kInvalidState),
  /// naming the owner, if this env is already bound.
  void bind(PerfCtr* ctr, std::function<int()> current_cpu);

  /// Full reset: forgets counters, callback AND any live MarkerSession,
  /// so bind -> unbind -> bind cycles are always safe.
  void unbind() noexcept;

  bool bound() const noexcept { return ctr_ != nullptr; }

  /// Label used in diagnostics ("session 'perfctr' already holds ...").
  const std::string& owner() const noexcept { return owner_; }
  void set_owner(std::string owner) { owner_ = std::move(owner); }

  // --- the paper's marker lifecycle over this env ------------------------

  void init(int num_threads, int num_regions);
  int register_region(const std::string& name);
  void start_region(int thread_id, int core_id);
  void stop_region(int thread_id, int core_id, int region_id);
  void close();

  /// The live session (created by init); null before init / after unbind.
  MarkerSession* session() noexcept { return session_.get(); }
  const MarkerSession* session() const noexcept { return session_.get(); }
  PerfCtr* counters() noexcept { return ctr_; }
  int current_cpu() const;

 private:
  MarkerSession& require_session(const char* what) const;

  std::string owner_;
  PerfCtr* ctr_ = nullptr;
  std::function<int()> current_cpu_;
  std::unique_ptr<MarkerSession> session_;
};

}  // namespace likwid::core
