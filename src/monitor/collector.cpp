#include "monitor/collector.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "fault/plan.hpp"
#include "monitor/aggregator.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::monitor {

namespace {

/// Counts a real PMU cannot plausibly accrue in one sampling interval
/// (~100 G events in 0.1 s would be a 1 THz event rate); anything above is
/// a saturated/wrapped counter read.
constexpr double kMaxPlausibleCount = 1e11;

/// The resident workload of machine `id`: a rotation of memory-, compute-
/// and branch-bound kernels with an id-dependent size factor, so the fleet
/// covers distinct metric regimes without any randomness.
workloads::SyntheticConfig workload_for(int id) {
  const std::size_t factor = 1 + static_cast<std::size_t>(id) % 3;
  switch (id % 4) {
    case 1:
      return workloads::copy_kernel(4'000'000 * factor, 64);
    case 2:
      return workloads::dgemm_kernel(256 * factor, 64);
    case 3:
      return workloads::branchy_kernel(2'000'000 * factor, 64, 0.3);
    default:
      return workloads::daxpy_kernel(4'000'000 * factor, 64);
  }
}

}  // namespace

Collector::Collector(int machine_id, MonitorConfig config)
    : machine_id_(machine_id),
      cfg_(std::move(config)),
      ring_(cfg_.ring_capacity) {
  LIKWID_REQUIRE(machine_id >= 0, "machine id cannot be negative");
  LIKWID_REQUIRE(cfg_.interval_seconds > 0,
                 "sampling interval must be positive");
  LIKWID_REQUIRE(!cfg_.groups.empty(), "configure at least one event group");
  // 0 is a valid target: a fully idle node (the allocation regression
  // test uses it to measure the bare sampling path).
  LIKWID_REQUIRE(
      cfg_.target_utilization >= 0 && cfg_.target_utilization <= 1,
      "target utilization must be in [0, 1]");
  // Validated here, not first in Aggregator, so a bad window length fails
  // before any monitoring time is spent.
  LIKWID_REQUIRE(cfg_.window_samples > 0, "window length must be positive");
  LIKWID_REQUIRE(cfg_.device_latency_us >= 0,
                 "device latency cannot be negative");
  LIKWID_REQUIRE(cfg_.device_latency_skew >= 0,
                 "device latency skew cannot be negative");
  device_latency_us_ =
      cfg_.device_latency_us *
      (1.0 + cfg_.device_latency_skew * static_cast<double>(machine_id));

  session_ = api::Session::configure()
                 .name("likwid-agent machine " + std::to_string(machine_id))
                 .machine(cfg_.machine_preset)
                 .os_enumeration(cfg_.os_enumeration)
                 .seed(cfg_.seed + static_cast<std::uint64_t>(machine_id))
                 .build();

  // Measure (and load) one hardware thread per physical core; SMT siblings
  // stay idle, as in the paper's pinned measurement setups.
  for (const auto& siblings : session_->topology().cores) {
    placement_.cpus.push_back(siblings.front());
  }
  session_->set_cpus(placement_.cpus);
  for (const auto& group : cfg_.groups) {
    session_->add_group(group);
  }
  core::PerfCtr& ctr = session_->counters();
  // Intern each set's sample shape once; the per-interval path below only
  // moves ids and dense vectors.
  for (int set = 0; set < ctr.num_event_sets(); ++set) {
    const auto& group = ctr.group_of(set);
    schemas_.push_back(MetricSchema::create(group ? group->name : "custom",
                                            ctr.metric_ids(set)));
  }
  workload_ =
      std::make_unique<workloads::SyntheticKernel>(workload_for(machine_id));
  if (cfg_.fault_plan != nullptr) {
    fault_ = cfg_.fault_plan->node_fault(machine_id);
    if (fault_.msr != fault::MsrFaultMode::kNone) {
      hwsim::SimMachine& machine = session_->kernel().machine();
      fault_device_ = std::make_shared<fault::MsrFaultDevice>(
          machine.spec(), fault_.msr, fault_.onset_step);
      machine.msrs().set_read_interposer(fault_device_);
    }
  }
  session_->start();
  // Open the first sampling interval now (at t = 0, counters running);
  // step() only ever closes intervals.
  session_->sampler();
}

void Collector::step() {
  // Arm the node's fault device for this step; a stalled node burns real
  // wall time first (its samples stay identical — the stall only shows up
  // as transport backpressure, like a wedged remote agent).
  if (fault_device_ != nullptr) {
    fault_device_->begin_step(steps_);
  }
  if (fault_.stall && cfg_.fault_plan != nullptr) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(cfg_.fault_plan->stall_us()));
  }
  // Simulated counter-access latency: block the way a real node agent
  // blocks on /dev/msr, sysfs or a management network round trip. Wall
  // time only — simulated time and the sample below are untouched, so the
  // sleep can never perturb rollups. This is the path worker threads
  // overlap (and the skewed variant is how tests force work stealing).
  if (device_latency_us_ > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(device_latency_us_));
  }

  const double interval = cfg_.interval_seconds;
  // Deterministic sawtooth load modulation (phase-shifted per machine):
  // real nodes breathe between job phases, and flat samples would make the
  // windowed min/max/p95 rollups degenerate to the mean.
  const double phase = static_cast<double>(
                           (steps_ + static_cast<std::uint64_t>(machine_id_)) %
                           8) /
                       8.0;
  const double busy_budget =
      std::min(interval * cfg_.target_utilization * (0.5 + phase), interval);

  // Run resident-workload slices until the busy share of the interval is
  // spent. Each slice asks for ~1/4 of the budget but never more than the
  // remainder, sized through the measured cost rate of the previous slice,
  // so the busy time lands on the budget instead of overshooting the
  // sampling cadence.
  ossim::SimKernel& kernel = session_->kernel();
  double busy = 0;
  for (int slice = 0; slice < 64 && busy < busy_budget - 1e-12; ++slice) {
    const double want = std::min(busy_budget / 4, busy_budget - busy);
    const double fraction =
        std::clamp(want * fraction_per_second_, 1e-9, 1.0);
    const double t = workload_->run_slice(kernel, placement_, fraction);
    if (t <= 0) break;
    kernel.advance_time(t);
    busy += t;
    fraction_per_second_ = fraction / t;  // calibrate the next slice
  }
  if (busy < interval) {
    kernel.advance_time(interval - busy);
  }

  const bool rotate =
      cfg_.rotate_groups && session_->counters().num_event_sets() > 1;
  // Member scratch: the interval's slabs and metric batch refill in place
  // every step, so the steady-state fold loop never allocates.
  core::IntervalSampler::Interval& iv = interval_;
  session_->sampler().poll_into(iv, rotate);

  // Plausibility-check the raw counts while the node's fault device is
  // armed: a frozen counter bank yields an all-zero interval (the metric
  // evaluator defines x/0 = 0, so stale data would otherwise aggregate as
  // silent zeros), a pegged one yields physically impossible rates. Gated
  // on the armed device so fault-free runs stay bit-identical.
  if (fault_device_ != nullptr && fault_device_->armed()) {
    bool any_nonzero = false;
    double peak = 0;
    for (std::size_t r = 0; r < iv.counts.rows(); ++r) {
      for (const double c : iv.counts.row(r)) {
        any_nonzero = any_nonzero || c != 0;
        peak = std::max(peak, c);
      }
    }
    if (iv.counts.rows() > 0 && !any_nonzero) {
      throw_error(ErrorCode::kUnavailable,
                  util::strprintf("machine %d: counters stale (all-zero "
                                  "interval at step %llu)",
                                  machine_id_,
                                  static_cast<unsigned long long>(steps_)));
    }
    if (peak > kMaxPlausibleCount) {
      throw_error(ErrorCode::kUnavailable,
                  util::strprintf("machine %d: counter saturated (%.3g "
                                  "events in one interval at step %llu)",
                                  machine_id_, peak,
                                  static_cast<unsigned long long>(steps_)));
    }
  }

  // Build the sample inside the buffer the ring retired last time around
  // (push_swap hands it back through sample_): after the ring has wrapped,
  // recording a sample reuses its capacity instead of allocating.
  Sample& s = sample_;
  s.sequence = steps_;
  s.t_start = iv.t_start;
  s.t_end = iv.t_end;
  s.schema = schemas_[static_cast<std::size_t>(iv.set)];
  s.values.resize(iv.metrics.size());
  for (std::size_t m = 0; m < iv.metrics.size(); ++m) {
    s.values[m] = reduce_values(s.schema->reduce[m], iv.metrics[m].values);
  }
  ring_.push_swap(s);
  ++steps_;
}

}  // namespace likwid::monitor
