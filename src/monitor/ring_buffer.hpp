// ring_buffer.hpp — fixed-capacity sample retention for the always-on
// agent.
//
// A monitoring daemon runs indefinitely but memory must not: the agent
// keeps the most recent `capacity` samples per machine and overwrites the
// oldest on overflow, counting what it dropped (the LIKWID Monitoring
// Stack keeps the same bounded retention between router flushes). Indexing
// is age-ordered: [0] is the oldest retained sample, [size()-1] the newest.
//
// This is the single-threaded retention store: it must only ever be
// touched by the thread that owns it (a collector's worker during a fleet
// run, or any thread after the fleet joined). The cross-thread transport
// between collectors and the aggregation thread is monitor::SpscRing,
// which is lock-free precisely because it refuses to overwrite (see the
// design note there).
//
// Internally the ring runs on monotonic begin_/end_ cursors (size is their
// difference) rather than a wrapped head index, and an overwriting push
// RETIRES THE OLDEST SLOT BEFORE WRITING IT. The old scheme assigned into
// the slot while the indexing still exposed it as the front element, so a
// move assignment that throws partway (a sample payload allocating) left a
// half-written slot published as valid data. Retiring first makes the
// throwing case consistent — the oldest sample is gone, the new one was
// never published, every visible slot is intact — and keeps the overwrite
// safe even if push ever takes its argument by reference (today's by-value
// signature copies before touching any slot, so push(ring.front()) was
// already alias-safe).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace likwid::monitor {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    LIKWID_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
  }

  /// Append a sample, overwriting the oldest one when full.
  void push(T value) {
    if (full()) {
      // Retire the oldest sample before its slot is reused, so indexing
      // never exposes a slot that is being overwritten.
      ++begin_;
      ++dropped_;
    }
    slots_[slot_of(end_)] = std::move(value);
    ++end_;
    ++pushed_;
  }

  /// push() by exchange: swaps `value` into the ring and hands the
  /// retired slot's payload back out through `value`. The steady-state
  /// form for samples with heap payloads — once the ring has wrapped, the
  /// caller's next sample is built inside a recycled buffer and the push
  /// itself allocates nothing.
  void push_swap(T& value) {
    if (full()) {
      ++begin_;
      ++dropped_;
    }
    using std::swap;
    swap(slots_[slot_of(end_)], value);
    ++end_;
    ++pushed_;
  }

  /// Remove and return the oldest retained sample (drain-style
  /// consumption); throws Error(kInvalidArgument) when empty.
  T pop_front() {
    LIKWID_REQUIRE(end_ != begin_, "ring buffer is empty");
    T value = std::move(slots_[slot_of(begin_)]);
    ++begin_;
    return value;
  }

  std::size_t size() const noexcept {
    return static_cast<std::size_t>(end_ - begin_);
  }
  std::size_t capacity() const noexcept { return slots_.size(); }
  bool empty() const noexcept { return end_ == begin_; }
  bool full() const noexcept { return size() == slots_.size(); }

  /// Total samples ever pushed, including overwritten ones.
  std::uint64_t pushed() const noexcept { return pushed_; }
  /// Samples lost to overwriting (cleared/popped samples are not
  /// "dropped").
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Age-ordered access: index 0 is the oldest retained sample.
  const T& operator[](std::size_t index) const {
    LIKWID_REQUIRE(index < size(), "ring buffer index out of range");
    return slots_[slot_of(begin_ + index)];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const {
    LIKWID_REQUIRE(end_ != begin_, "ring buffer is empty");
    return (*this)[size() - 1];
  }

  void clear() noexcept {
    begin_ = end_;
    // pushed_/dropped_ survive: they describe the buffer's lifetime.
  }

 private:
  std::size_t slot_of(std::uint64_t cursor) const noexcept {
    return static_cast<std::size_t>(cursor % slots_.size());
  }

  std::vector<T> slots_;
  std::uint64_t begin_ = 0;  ///< cursor of the oldest retained sample
  std::uint64_t end_ = 0;    ///< one past the newest sample
  std::uint64_t pushed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace likwid::monitor
