// ring_buffer.hpp — fixed-capacity sample storage for the always-on agent.
//
// A monitoring daemon runs indefinitely but memory must not: the agent
// keeps the most recent `capacity` samples per machine and overwrites the
// oldest on overflow, counting what it dropped (the LIKWID Monitoring
// Stack keeps the same bounded retention between router flushes). Indexing
// is age-ordered: [0] is the oldest retained sample, [size()-1] the newest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace likwid::monitor {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    LIKWID_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
  }

  /// Append a sample, overwriting the oldest one when full.
  void push(T value) {
    const std::size_t slot = (head_ + size_) % slots_.size();
    slots_[slot] = std::move(value);
    if (size_ < slots_.size()) {
      ++size_;
    } else {
      head_ = (head_ + 1) % slots_.size();
      ++dropped_;
    }
    ++pushed_;
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return slots_.size(); }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == slots_.size(); }

  /// Total samples ever pushed, including overwritten ones.
  std::uint64_t pushed() const noexcept { return pushed_; }
  /// Samples lost to overwriting (cleared samples are not "dropped").
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Age-ordered access: index 0 is the oldest retained sample.
  const T& operator[](std::size_t index) const {
    LIKWID_REQUIRE(index < size_, "ring buffer index out of range");
    return slots_[(head_ + index) % slots_.size()];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const {
    LIKWID_REQUIRE(size_ > 0, "ring buffer is empty");
    return (*this)[size_ - 1];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
    // pushed_/dropped_ survive: they describe the buffer's lifetime.
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;  ///< slot of the oldest sample
  std::size_t size_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace likwid::monitor
