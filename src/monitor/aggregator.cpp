#include "monitor/aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/status.hpp"

namespace likwid::monitor {

ReduceKind reduce_kind_of(std::string_view metric_name) {
  if (metric_name.find("Runtime") != std::string_view::npos) {
    return ReduceKind::kMax;
  }
  if (metric_name.find("/s") != std::string_view::npos ||
      metric_name.find("[GBytes]") != std::string_view::npos) {
    return ReduceKind::kSum;
  }
  return ReduceKind::kAvg;
}

double reduce_values(ReduceKind kind, std::span<const double> values) {
  if (values.empty()) return 0;
  switch (kind) {
    case ReduceKind::kMax:
      return *std::max_element(values.begin(), values.end());
    case ReduceKind::kSum:
      return std::accumulate(values.begin(), values.end(), 0.0);
    case ReduceKind::kAvg:
      return std::accumulate(values.begin(), values.end(), 0.0) /
             static_cast<double>(values.size());
  }
  return 0;
}

std::shared_ptr<const MetricSchema> MetricSchema::create(
    std::string_view group, const std::vector<core::NameId>& metric_ids) {
  auto schema = std::make_shared<MetricSchema>();
  schema->group_id = core::intern_name(group);
  schema->metric_ids = metric_ids;
  schema->reduce.reserve(metric_ids.size());
  for (const core::NameId id : metric_ids) {
    schema->reduce.push_back(reduce_kind_of(core::resolve_name(id)));
  }
  schema->output_order.resize(metric_ids.size());
  std::iota(schema->output_order.begin(), schema->output_order.end(), 0u);
  std::sort(schema->output_order.begin(), schema->output_order.end(),
            [&](std::size_t a, std::size_t b) {
              return core::resolve_name(metric_ids[a]) <
                     core::resolve_name(metric_ids[b]);
            });
  return schema;
}

double Sample::value_of(std::string_view metric) const {
  LIKWID_ASSERT(schema != nullptr, "sample without a schema");
  const core::NameId id = core::NameTable::instance().find(metric);
  if (id != core::kInvalidNameId) {
    for (std::size_t i = 0; i < schema->metric_ids.size(); ++i) {
      if (schema->metric_ids[i] == id) return values[i];
    }
  }
  throw_error(ErrorCode::kNotFound, "sample has no metric '" +
                                        std::string(metric) + "'");
}

WindowStats compute_stats(std::vector<double>& values) {
  LIKWID_REQUIRE(!values.empty(), "window statistics need at least one value");
  WindowStats s;
  s.count = values.size();
  const auto [min_it, max_it] =
      std::minmax_element(values.begin(), values.end());
  s.min = *min_it;
  s.max = *max_it;
  s.avg = std::accumulate(values.begin(), values.end(), 0.0) /
          static_cast<double>(values.size());
  // Nearest-rank percentile: the smallest value with at least 95% of the
  // samples at or below it. nth_element beats the former full sort — the
  // window is partitioned, not ordered.
  const auto rank = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(values.size())));
  const std::size_t idx = std::max<std::size_t>(rank, 1) - 1;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(idx),
                   values.end());
  s.p95 = values[idx];
  return s;
}

double node_reduce(const std::string& metric_name,
                   const std::map<int, double>& per_cpu) {
  std::vector<double> values;
  values.reserve(per_cpu.size());
  for (const auto& [cpu, v] : per_cpu) values.push_back(v);
  return reduce_values(reduce_kind_of(metric_name), values);
}

WindowFolder::WindowFolder(int machine_id, int window_samples)
    : machine_id_(machine_id), window_samples_(window_samples) {
  LIKWID_REQUIRE(window_samples_ > 0, "window length must be positive");
}

void WindowFolder::flush(OpenWindow& w) {
  // Emit in metric-name order (the schema's precomputed permutation),
  // matching the old string-keyed rollup maps byte for byte.
  for (const std::size_t slot : w.schema->output_order) {
    SeriesPoint p;
    p.machine_id = machine_id_;
    p.window = window_index_;
    p.t_start = w.t_start;
    p.t_end = w.t_end;
    p.group_id = w.schema->group_id;
    p.metric_id = w.schema->metric_ids[slot];
    p.stats = compute_stats(w.series[slot]);
    points_.push_back(std::move(p));
  }
  ++window_index_;
  w.samples = 0;
  for (auto& s : w.series) s.clear();
}

void WindowFolder::add(const Sample& s) {
  LIKWID_ASSERT(s.schema != nullptr, "sample without a schema");
  OpenWindow& w = open_[s.schema->group_id];
  if (w.samples == 0) {
    w.t_start = s.t_start;
    w.schema = s.schema;
    w.series.resize(s.values.size());
  }
  w.t_end = s.t_end;
  for (std::size_t m = 0; m < s.values.size(); ++m) {
    w.series[m].push_back(s.values[m]);
  }
  ++w.samples;
  ++samples_folded_;
  if (w.samples == static_cast<std::size_t>(window_samples_)) {
    flush(w);
  }
}

void WindowFolder::finish() {
  // Trailing partial windows, oldest-first by window start so the emitted
  // window indices stay in time order across groups.
  std::vector<OpenWindow*> trailing;
  for (auto& [group, w] : open_) {
    if (w.samples > 0) trailing.push_back(&w);
  }
  std::sort(trailing.begin(), trailing.end(),
            [](const OpenWindow* a, const OpenWindow* b) {
              return a->t_start < b->t_start;
            });
  for (OpenWindow* w : trailing) {
    flush(*w);
  }
}

Aggregator::Aggregator(int window_samples) : window_samples_(window_samples) {
  LIKWID_REQUIRE(window_samples_ > 0, "window length must be positive");
}

std::vector<SeriesPoint> Aggregator::rollup(int machine_id,
                                            const SampleRing& ring) const {
  WindowFolder folder(machine_id, window_samples_);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    folder.add(ring[i]);
  }
  folder.finish();
  return folder.take_points();
}

}  // namespace likwid::monitor
