#include "monitor/aggregator.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace likwid::monitor {

WindowStats compute_stats(std::vector<double> values) {
  LIKWID_REQUIRE(!values.empty(), "window statistics need at least one value");
  WindowStats s;
  s.count = values.size();
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double sum = 0;
  for (const double v : values) sum += v;
  s.avg = sum / static_cast<double>(values.size());
  // Nearest-rank percentile: the smallest value with at least 95% of the
  // samples at or below it.
  const auto rank = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(values.size())));
  s.p95 = values[std::max<std::size_t>(rank, 1) - 1];
  return s;
}

double node_reduce(const std::string& metric_name,
                   const std::map<int, double>& per_cpu) {
  if (per_cpu.empty()) return 0;
  if (metric_name.find("Runtime") != std::string::npos) {
    double slowest = 0;
    for (const auto& [cpu, v] : per_cpu) slowest = std::max(slowest, v);
    return slowest;
  }
  double sum = 0;
  for (const auto& [cpu, v] : per_cpu) sum += v;
  const bool additive = metric_name.find("/s") != std::string::npos ||
                        metric_name.find("[GBytes]") != std::string::npos;
  if (additive) return sum;
  return sum / static_cast<double>(per_cpu.size());
}

Aggregator::Aggregator(int window_samples) : window_samples_(window_samples) {
  LIKWID_REQUIRE(window_samples_ > 0, "window length must be positive");
}

std::vector<SeriesPoint> Aggregator::rollup(int machine_id,
                                            const SampleRing& ring) const {
  struct OpenWindow {
    double t_start = 0;
    double t_end = 0;
    std::map<std::string, std::vector<double>> values;  ///< metric -> series
    std::size_t samples = 0;
  };

  std::vector<SeriesPoint> out;
  int window_index = 0;
  // group name -> its currently open window. With rotation the groups
  // interleave in the ring; each group fills its own windows at its own
  // cadence, exactly like a per-group downsampler.
  std::map<std::string, OpenWindow> open;

  const auto flush = [&](const std::string& group, OpenWindow& w) {
    for (const auto& [metric, series] : w.values) {
      SeriesPoint p;
      p.machine_id = machine_id;
      p.window = window_index;
      p.t_start = w.t_start;
      p.t_end = w.t_end;
      p.group = group;
      p.metric = metric;
      p.stats = compute_stats(series);
      out.push_back(std::move(p));
    }
    ++window_index;
    w = OpenWindow{};
  };

  for (std::size_t i = 0; i < ring.size(); ++i) {
    const Sample& s = ring[i];
    OpenWindow& w = open[s.group];
    if (w.samples == 0) w.t_start = s.t_start;
    w.t_end = s.t_end;
    for (const auto& [metric, value] : s.metrics) {
      w.values[metric].push_back(value);
    }
    ++w.samples;
    if (w.samples == static_cast<std::size_t>(window_samples_)) {
      flush(s.group, w);
    }
  }
  // Trailing partial windows, oldest-first by window start so the emitted
  // window indices stay in time order across groups.
  std::vector<std::pair<std::string, OpenWindow*>> trailing;
  for (auto& [group, w] : open) {
    if (w.samples > 0) trailing.emplace_back(group, &w);
  }
  std::sort(trailing.begin(), trailing.end(),
            [](const auto& a, const auto& b) {
              return a.second->t_start < b.second->t_start;
            });
  for (auto& [group, w] : trailing) {
    flush(group, *w);
  }
  return out;
}

}  // namespace likwid::monitor
