// spsc_ring.hpp — lock-free single-producer/single-consumer transport ring.
//
// The distributed monitoring stack (src/collect) moves encoded frames
// from each node agent to its collector ingest thread through one of
// these per node. (The in-process fleet once used it to feed a live
// aggregation thread; the work-stealing scheduler folds samples on the
// producing worker, so no ring sits on that path anymore.) It is a
// classic bounded SPSC queue over monotonic cursors:
// the producer owns tail_, the consumer owns head_, each side caches the
// other's cursor so the common case touches one shared atomic per
// operation (the rigtorp/folly ProducerConsumerQueue construction).
//
// Design note on overwrite semantics: a lock-free ring cannot overwrite
// its oldest element for non-trivially-copyable payloads — the producer
// would mutate a slot the consumer may be reading, which is a torn read no
// memory ordering can repair (only per-slot seqlocks over memcpy-able
// types can). So under backpressure try_push() REJECTS THE NEWEST element
// and counts it; keep-most-recent retention (overwrite-oldest) lives in
// the single-threaded monitor::RingBuffer on whichever side owns it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace likwid::monitor {

/// Destructive-interference distance of every x86 this suite models. Not
/// std::hardware_destructive_interference_size: its value is ABI-unstable
/// and GCC warns on any use (-Winterference-size).
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : capacity_(capacity), slots_(capacity) {
    LIKWID_REQUIRE(capacity > 0, "spsc ring capacity must be positive");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Appends `value` unless the ring is full; a rejected
  /// element is counted in rejected() and left untouched in `value`.
  bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == capacity_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    slots_[static_cast<std::size_t>(tail % capacity_)] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    pushed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer side. Moves the oldest element into `out`; false when empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[static_cast<std::size_t>(head % capacity_)]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Pops up to `max` elements into `out` (appended);
  /// returns how many were moved.
  std::size_t drain_into(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    T item;
    while (n < max && try_pop(item)) {
      out.push_back(std::move(item));
      ++n;
    }
    return n;
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// Approximate occupancy; exact only when both sides are quiescent.
  std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail >= head ? tail - head : 0);
  }

  bool empty() const noexcept { return size() == 0; }

  /// Elements successfully published (does not include rejected ones).
  std::uint64_t pushed() const noexcept {
    return pushed_.load(std::memory_order_relaxed);
  }
  /// try_push() calls bounced off a full ring.
  std::uint64_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t capacity_;
  std::vector<T> slots_;
  /// Consumer cursor (total elements popped) and the producer's cached
  /// view of it; separate cache lines so the cursors do not false-share.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  alignas(kCacheLineSize) std::uint64_t head_cache_ = 0;  ///< producer-owned
  /// Producer cursor (total elements pushed) and the consumer's cache.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLineSize) std::uint64_t tail_cache_ = 0;  ///< consumer-owned
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace likwid::monitor
