#include "monitor/health.hpp"

#include "util/status.hpp"

namespace likwid::monitor {

std::string_view to_string(NodeHealth state) noexcept {
  switch (state) {
    case NodeHealth::kHealthy: return "healthy";
    case NodeHealth::kDegraded: return "degraded";
    case NodeHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

HealthRegistry::HealthRegistry(int num_nodes, int quarantine_after,
                               int recover_after)
    : quarantine_after_(quarantine_after), recover_after_(recover_after) {
  LIKWID_REQUIRE(num_nodes >= 0, "health registry: negative node count");
  LIKWID_REQUIRE(quarantine_after >= 1 && recover_after >= 1,
                 "health registry: thresholds must be >= 1");
  util::MutexLock lock(mutex_);
  nodes_.resize(static_cast<std::size_t>(num_nodes));
}

void HealthRegistry::record_sample_ok(int node) {
  util::MutexLock lock(mutex_);
  Node& n = nodes_.at(static_cast<std::size_t>(node));
  ++n.samples_ok;
  n.consecutive_faults = 0;
  if (n.state == NodeHealth::kQuarantined) return;  // terminal for the run
  if (n.state == NodeHealth::kDegraded &&
      ++n.consecutive_ok >= static_cast<std::uint64_t>(recover_after_)) {
    n.state = NodeHealth::kHealthy;
  }
}

NodeHealth HealthRegistry::record_fault(int node, const std::string& error) {
  util::MutexLock lock(mutex_);
  Node& n = nodes_.at(static_cast<std::size_t>(node));
  ++n.step_faults;
  n.consecutive_ok = 0;
  n.last_error = error;
  if (n.state != NodeHealth::kQuarantined) {
    n.state = ++n.consecutive_faults >=
                      static_cast<std::uint64_t>(quarantine_after_)
                  ? NodeHealth::kQuarantined
                  : NodeHealth::kDegraded;
  }
  return n.state;
}

void HealthRegistry::record_lost_batch(int node) {
  util::MutexLock lock(mutex_);
  Node& n = nodes_.at(static_cast<std::size_t>(node));
  ++n.batches_lost;
  n.consecutive_ok = 0;
  if (n.state == NodeHealth::kHealthy) n.state = NodeHealth::kDegraded;
}

void HealthRegistry::record_worker_restart() {
  util::MutexLock lock(mutex_);
  ++worker_restarts_;
}

bool HealthRegistry::quarantined(int node) const {
  util::MutexLock lock(mutex_);
  return nodes_.at(static_cast<std::size_t>(node)).state ==
         NodeHealth::kQuarantined;
}

NodeHealth HealthRegistry::state(int node) const {
  util::MutexLock lock(mutex_);
  return nodes_.at(static_cast<std::size_t>(node)).state;
}

NodeHealthSnapshot HealthRegistry::snapshot(int node) const {
  util::MutexLock lock(mutex_);
  const Node& n = nodes_.at(static_cast<std::size_t>(node));
  return NodeHealthSnapshot{node,         n.state,        n.step_faults,
                            n.samples_ok, n.batches_lost, n.last_error};
}

std::vector<NodeHealthSnapshot> HealthRegistry::snapshots() const {
  util::MutexLock lock(mutex_);
  std::vector<NodeHealthSnapshot> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    out.push_back(NodeHealthSnapshot{static_cast<int>(i), n.state,
                                     n.step_faults, n.samples_ok,
                                     n.batches_lost, n.last_error});
  }
  return out;
}

std::vector<int> HealthRegistry::quarantined_nodes() const {
  util::MutexLock lock(mutex_);
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].state == NodeHealth::kQuarantined) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::uint64_t HealthRegistry::worker_restarts() const {
  util::MutexLock lock(mutex_);
  return worker_restarts_;
}

}  // namespace likwid::monitor
