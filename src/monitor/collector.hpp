// collector.hpp — one monitored machine of the agent's fleet.
//
// A Collector owns a complete simulated node (machine, kernel, counters)
// plus a synthetic resident workload standing in for whatever the node is
// running, and advances it in fixed sampling intervals: each step() runs
// the workload for the configured utilization share of the interval, idles
// the remainder, closes the measurement interval through the core
// IntervalSampler, reduces the derived metrics to node level and retains
// the sample in the bounded ring. Everything is deterministic in
// (machine_id, MonitorConfig), which is what makes fleet-scale tests and
// reproducible incident analysis possible — and what lets the threaded
// fleet scheduler shard collectors over workers without changing any
// machine's sample stream.
//
// Thread-safety: a Collector is confined to one thread at a time. During a
// threaded fleet run exactly one worker steps it and reads its ring; any
// thread may read it after the fleet joined. The only process-global state
// a step touches is core::NameTable, which is internally synchronized (all
// schema interning happens at construction anyway).
#pragma once

#include <cstdint>
#include <memory>

#include "api/session.hpp"
#include "core/perfctr.hpp"
#include "core/sampling.hpp"
#include "fault/msr_fault.hpp"
#include "monitor/config.hpp"
#include "ossim/kernel.hpp"
#include "workloads/synthetic.hpp"

namespace likwid::monitor {

class Collector {
 public:
  /// Builds the node from `config.machine_preset` and programs one event
  /// set per configured group. The resident workload is chosen
  /// deterministically from `machine_id`, so a fleet is heterogeneous but
  /// reproducible.
  Collector(int machine_id, MonitorConfig config);

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Advance the node by one sampling interval and record one Sample.
  void step();

  int machine_id() const noexcept { return machine_id_; }
  std::uint64_t steps() const noexcept { return steps_; }
  /// The node's fault assignment (all-kNone without a plan).
  const fault::NodeFault& fault_assignment() const noexcept { return fault_; }
  /// Armed MSR fault device, or null when the node's device is healthy.
  const fault::MsrFaultDevice* fault_device() const noexcept {
    return fault_device_.get();
  }
  const MonitorConfig& config() const noexcept { return cfg_; }
  const SampleRing& samples() const noexcept { return ring_; }
  /// The per-group sample schemas, fleet-shared by every Sample this
  /// collector emits (one per configured event group, group order). The
  /// collector wire format keys its per-stream dictionary on these
  /// instances.
  const std::vector<std::shared_ptr<const MetricSchema>>& schemas()
      const noexcept {
    return schemas_;
  }
  const ossim::SimKernel& kernel() const noexcept { return session_->kernel(); }
  const core::PerfCtr& ctr() const noexcept { return session_->counters(); }
  const workloads::SyntheticKernel& workload() const noexcept {
    return *workload_;
  }

 private:
  int machine_id_;
  MonitorConfig cfg_;
  /// The monitored node, wired through the embeddable facade: machine,
  /// kernel, counters and interval sampler all live in the session.
  std::unique_ptr<api::Session> session_;
  std::unique_ptr<workloads::SyntheticKernel> workload_;
  workloads::Placement placement_;
  /// One schema per event set, built at construction; samples share them.
  std::vector<std::shared_ptr<const MetricSchema>> schemas_;
  /// Fault assignment of this node under cfg_.fault_plan (all-kNone
  /// otherwise) and the interposer realizing its MSR mode. The register
  /// file co-owns the device, so it outlives any reader.
  fault::NodeFault fault_;
  std::shared_ptr<fault::MsrFaultDevice> fault_device_;
  SampleRing ring_;
  /// step() scratch, refilled in place every interval: the polled
  /// interval's buffers and the sample being built (which push_swap
  /// exchanges against the ring's retired slot). Together these make the
  /// steady-state step allocation-free.
  core::IntervalSampler::Interval interval_;
  Sample sample_;
  /// Measured cost rate of the resident workload (workload fraction per
  /// simulated second), calibrated after every slice; sizes the next slice
  /// to hit its time target.
  double fraction_per_second_ = 1e-3;
  /// This node's resolved per-step counter-access latency:
  /// `device_latency_us * (1 + device_latency_skew * machine_id)`.
  double device_latency_us_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace likwid::monitor
