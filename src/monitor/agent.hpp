// agent.hpp — the fleet scheduler of likwid-agent.
//
// An Agent owns one Collector per monitored machine and advances the whole
// fleet in lockstep sampling intervals. With FleetConfig::num_threads == 1
// it is the original serial loop; with N > 1 it becomes a thread-pooled
// scheduler: the collectors are sharded over N worker threads (one worker
// per num_machines/N nodes), each worker publishes Sample batches into a
// per-collector lock-free SPSC transport ring (monitor/spsc_ring.hpp), and
// one dedicated aggregation thread drains the rings and folds the samples
// into min/avg/max/p95 windows as they arrive (monitor::WindowFolder).
//
//   worker 0 ── step ──> Collector 0 ─┐ batch   ┌> SpscRing 0 ─┐
//              step ──> Collector 1 ─┤ ──────> ├> SpscRing 1 ─┼─> aggregation
//   worker 1 ── step ──> Collector 2 ─┤         ├> SpscRing 2 ─┤   thread
//              step ──> Collector 3 ─┘         └> SpscRing 3 ─┘   (folds
//                                                                  windows)
//
// Collectors are independent by construction (each owns its node, clock
// and RNG stream), so a machine's sample stream is identical no matter
// which worker steps it: threaded rollups are bit-equal to the serial
// fold over the same samples. The two paths differ only when the per-
// collector retention ring overwrote samples — the serial rollup reads the
// retained ring, the aggregation thread saw every sample live.
//
// The scheduler SUPERVISES rather than failing fast: a sampling step that
// throws marks the node in the HealthRegistry (degraded, then quarantined
// after repeated faults — quarantined nodes are skipped and excluded from
// rollups); a worker thread that dies is restarted in place with capped,
// jittered exponential backoff, up to SupervisionConfig::max_restarts
// before the failure turns terminal. Aggregation-thread death stays
// terminal — without the consumer there is nothing to supervise for.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "api/result_table.hpp"
#include "monitor/aggregator.hpp"
#include "monitor/collector.hpp"
#include "monitor/config.hpp"
#include "monitor/health.hpp"

namespace likwid::monitor {

struct AgentConfig {
  MonitorConfig monitor;       ///< per-machine configuration
  FleetConfig fleet;           ///< worker/aggregation scheduling
  int num_machines = 1;
  double duration_seconds = 1.0;  ///< simulated time run() covers
};

/// Snapshot handed to the progress callback from the aggregation thread.
struct FleetProgress {
  double elapsed_seconds = 0;        ///< real time since run() started
  std::uint64_t samples_folded = 0;  ///< samples folded into windows so far
  std::uint64_t rows_emitted = 0;    ///< rollup rows closed so far
};

/// Transport-ring accounting of the last threaded run. Backpressure must
/// not be invisible: a full SPSC ring makes the worker retry (counted as
/// a reject), and every batch LOST carries an attribution — lost batches
/// bias the window aggregates, so tools surface the counters next to the
/// retention ring's dropped() line, and the chaos tests assert the loss
/// reasons add up to the total (no silent loss path).
struct FleetTransportStats {
  std::uint64_t batches_published = 0;  ///< batches that reached the rings
  std::uint64_t rejects = 0;            ///< try_push bounces (retried)
  std::uint64_t batches_lost = 0;       ///< gave up: samples missing
  /// Loss attribution; the three always sum to `batches_lost`.
  std::uint64_t lost_deadline = 0;         ///< publish deadline expired
  std::uint64_t lost_aggregator_down = 0;  ///< aggregation thread died
  std::uint64_t lost_quarantined = 0;      ///< flushed at node quarantine
  /// Per-machine reject counts, fleet-ordered (which collector's worker
  /// was bouncing off a full ring).
  std::vector<std::uint64_t> rejects_per_machine;
  /// Per-machine lost-batch counts, fleet-ordered (who the lost samples
  /// belonged to — pairs with HealthRegistry's per-node batches_lost).
  std::vector<std::uint64_t> lost_per_machine;
};

class Agent {
 public:
  explicit Agent(AgentConfig config);

  /// One sampling interval on every machine of the fleet (serial path;
  /// not meant to be mixed with a concurrently executing run()).
  void step();

  /// Step until `duration_seconds` of simulated time is covered
  /// (ceil(duration / interval) steps), serially or on the worker pool
  /// per FleetConfig::num_threads.
  void run();

  std::uint64_t steps() const noexcept { return steps_; }
  const AgentConfig& config() const noexcept { return cfg_; }
  const std::vector<std::unique_ptr<Collector>>& collectors() const noexcept {
    return collectors_;
  }

  /// Worker threads run() will shard the fleet over (resolved thread
  /// count capped at the machine count). The single source of the
  /// scheduling policy — tools display it rather than re-deriving it.
  int planned_workers() const noexcept;
  /// Whether run() will use the threaded scheduler (more than one worker,
  /// or FleetConfig::force_threaded).
  bool plans_threaded() const noexcept;

  /// Whether the last run() COMPLETED on the threaded scheduler (a
  /// failed threaded run, or a later serial step(), clears this and
  /// rollups() falls back to the retention rings).
  bool threaded() const noexcept { return !folded_.empty(); }

  /// Windowed rollups of every non-quarantined machine, fleet-ordered by
  /// machine id. After a threaded run these are the live-folded windows of
  /// that run; otherwise they are computed from each machine's retention
  /// ring. Quarantined machines are excluded (their data is untrusted) and
  /// reported through health_report() instead.
  std::vector<SeriesPoint> rollups() const;

  /// Per-node health state, maintained across runs of this agent.
  const HealthRegistry& health() const noexcept { return *health_; }

  /// The fleet's health as a result table (group NODE_HEALTH, one column
  /// per machine id), emitted by likwid-agent through every OutputSink.
  api::ResultTable health_report() const;

  /// Transport accounting of the last threaded run (empty per-machine
  /// vector after a serial run or step()).
  const FleetTransportStats& transport() const noexcept {
    return transport_;
  }

  /// Install a live progress callback, invoked from the aggregation
  /// thread roughly every `interval_seconds` of real time during a
  /// threaded run (never from a serial run). The callback must be
  /// thread-safe with respect to the caller's own state.
  void set_progress(std::function<void(const FleetProgress&)> callback,
                    double interval_seconds = 0.5);

 private:
  void run_serial(std::uint64_t total_steps);
  void run_threaded(std::uint64_t total_steps, int workers);

  AgentConfig cfg_;
  std::vector<std::unique_ptr<Collector>> collectors_;
  /// Health ledger shared by workers, aggregation and reporting
  /// (internally synchronized); sized to the fleet at construction.
  std::unique_ptr<HealthRegistry> health_;
  std::uint64_t steps_ = 0;
  /// Per-machine rollup rows folded live by the last threaded run.
  std::vector<std::vector<SeriesPoint>> folded_;
  FleetTransportStats transport_;
  std::function<void(const FleetProgress&)> progress_;
  double progress_interval_seconds_ = 0.5;
};

}  // namespace likwid::monitor
