// agent.hpp — the fleet scheduler of likwid-agent.
//
// An Agent owns one Collector per monitored machine and advances the whole
// fleet in lockstep sampling intervals. With FleetConfig::num_threads == 1
// it is the original serial loop; with N > 1 it becomes a work-stealing
// task scheduler (monitor/scheduler.hpp): every node is a NodeTask
// carrying its collector AND its WindowFolder, tasks start sharded over N
// per-worker deques, and the worker holding a task steps the node and
// folds each sample immediately into the task's folder. Partial folds
// merge into the fleet series only at window close; there is no
// aggregation thread and no transport ring on the hot path — the design
// that replaced the PR 4 worker/aggregator split after it bottlenecked
// the whole fleet on one consumer (0.84x serial at 8 workers).
//
//   worker 0  deque: [task 0][task 1] ── slice ──> step node, fold local
//   worker 1  deque: [task 2][task 3] ── slice ──> step node, fold local
//      │                        ▲
//      └── idle? steal from the ┘      rows emitted at window close only;
//          busiest other deque         per-node folders concatenate after
//                                      the join (fleet-ordered)
//
// Collectors are independent by construction (each owns its node, clock
// and RNG stream) and a task is held by exactly one worker at a time, so
// a machine's sample stream — and its fold order — is identical no matter
// how often its task is stolen: threaded rollups are bit-equal to the
// serial fold over the same samples. The two paths differ only when the
// per-collector retention ring overwrote samples — the serial rollup
// reads the retained ring, the task's folder saw every sample live.
//
// The scheduler SUPERVISES rather than failing fast: a sampling step that
// throws marks the node in the HealthRegistry (degraded, then quarantined
// after repeated faults — a quarantined node's task is retired and its
// partial windows are discarded with attributed loss); a worker thread
// that dies is restarted in place with capped, jittered exponential
// backoff, up to SupervisionConfig::max_restarts before the failure turns
// terminal. Its in-flight task is re-queued first, so no node loses
// progress to a worker crash.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "api/result_table.hpp"
#include "monitor/aggregator.hpp"
#include "monitor/collector.hpp"
#include "monitor/config.hpp"
#include "monitor/health.hpp"

namespace likwid::monitor {

struct AgentConfig {
  MonitorConfig monitor;       ///< per-machine configuration
  FleetConfig fleet;           ///< worker/aggregation scheduling
  int num_machines = 1;
  double duration_seconds = 1.0;  ///< simulated time run() covers
};

/// Snapshot handed to the progress callback during a threaded run.
struct FleetProgress {
  double elapsed_seconds = 0;        ///< real time since run() started
  std::uint64_t samples_folded = 0;  ///< samples folded into windows so far
  std::uint64_t rows_emitted = 0;    ///< rollup rows closed so far
};

/// Scheduling and loss accounting of the last threaded run. The old
/// transport rings are gone — a worker folds its own samples, so
/// backpressure (and its deadline/aggregator-down loss modes) is
/// structurally impossible. What remains observable is the scheduler
/// itself: how many task slices ran, how many were acquired by stealing,
/// what slice length the autotuner settled on — and the one loss mode
/// left, the quarantine flush, still fully attributed (the chaos tests
/// assert the reasons sum to the total; no silent loss path).
struct FleetTransportStats {
  std::uint64_t slices_folded = 0;  ///< task slices executed (fold batches)
  std::uint64_t steals = 0;         ///< slices acquired by work stealing
  std::uint64_t batches_lost = 0;   ///< partial folds discarded: samples
                                    ///< missing from the series
  /// Loss attribution; always sums to `batches_lost`. Quarantine flush is
  /// the only loss mode of the task scheduler (a quarantined node's open
  /// partial windows are discarded — its data is untrusted).
  std::uint64_t lost_quarantined = 0;
  /// Per-machine steal counts, fleet-ordered (whose tasks migrated —
  /// the slow shard under a skewed fleet).
  std::vector<std::uint64_t> steals_per_machine;
  /// Per-machine lost-batch counts, fleet-ordered (who the lost samples
  /// belonged to — pairs with HealthRegistry's per-node batches_lost).
  std::vector<std::uint64_t> lost_per_machine;
  /// Slice length the run actually used: the autotuner's final choice
  /// when FleetConfig::batch_samples was 0, the configured value
  /// otherwise. Surfaced so bench runs record what the tuner chose.
  std::size_t batch_steps = 0;
  bool batch_autotuned = false;  ///< batch_steps came from the autotuner
};

class Agent {
 public:
  explicit Agent(AgentConfig config);

  /// One sampling interval on every machine of the fleet (serial path;
  /// not meant to be mixed with a concurrently executing run()).
  void step();

  /// Step until `duration_seconds` of simulated time is covered
  /// (ceil(duration / interval) steps), serially or on the worker pool
  /// per FleetConfig::num_threads.
  void run();

  std::uint64_t steps() const noexcept { return steps_; }
  const AgentConfig& config() const noexcept { return cfg_; }
  const std::vector<std::unique_ptr<Collector>>& collectors() const noexcept {
    return collectors_;
  }

  /// Worker threads run() will shard the fleet over (resolved thread
  /// count capped at the machine count). The single source of the
  /// scheduling policy — tools display it rather than re-deriving it.
  int planned_workers() const noexcept;
  /// Whether run() will use the threaded scheduler (more than one worker,
  /// or FleetConfig::force_threaded).
  bool plans_threaded() const noexcept;

  /// Whether the last run() COMPLETED on the threaded scheduler (a
  /// failed threaded run, or a later serial step(), clears this and
  /// rollups() falls back to the retention rings).
  bool threaded() const noexcept { return !folded_.empty(); }

  /// Windowed rollups of every non-quarantined machine, fleet-ordered by
  /// machine id. After a threaded run these are the live-folded windows of
  /// that run; otherwise they are computed from each machine's retention
  /// ring. Quarantined machines are excluded (their data is untrusted) and
  /// reported through health_report() instead.
  std::vector<SeriesPoint> rollups() const;

  /// Per-node health state, maintained across runs of this agent.
  const HealthRegistry& health() const noexcept { return *health_; }

  /// The fleet's health as a result table (group NODE_HEALTH, one column
  /// per machine id), emitted by likwid-agent through every OutputSink.
  api::ResultTable health_report() const;

  /// Transport accounting of the last threaded run (empty per-machine
  /// vector after a serial run or step()).
  const FleetTransportStats& transport() const noexcept {
    return transport_;
  }

  /// Install a live progress callback, invoked from a lightweight
  /// progress thread roughly every `interval_seconds` of real time during
  /// a threaded run (never from a serial run; at least once per threaded
  /// run). The callback must be thread-safe with respect to the caller's
  /// own state.
  void set_progress(std::function<void(const FleetProgress&)> callback,
                    double interval_seconds = 0.5);

 private:
  void run_serial(std::uint64_t total_steps);
  void run_threaded(std::uint64_t total_steps, int workers);

  AgentConfig cfg_;
  std::vector<std::unique_ptr<Collector>> collectors_;
  /// Health ledger shared by workers, aggregation and reporting
  /// (internally synchronized); sized to the fleet at construction.
  std::unique_ptr<HealthRegistry> health_;
  std::uint64_t steps_ = 0;
  /// Per-machine rollup rows folded live by the last threaded run.
  std::vector<std::vector<SeriesPoint>> folded_;
  FleetTransportStats transport_;
  std::function<void(const FleetProgress&)> progress_;
  double progress_interval_seconds_ = 0.5;
};

}  // namespace likwid::monitor
