// agent.hpp — the fleet driver of likwid-agent.
//
// An Agent owns one Collector per monitored machine and advances the whole
// fleet in lockstep sampling intervals. Rollups across the fleet come from
// the Aggregator; the cli series writers export them. This is the
// process-level composition point future scaling PRs shard or make
// asynchronous — collectors are already independent by construction (each
// owns its node and clock).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "monitor/aggregator.hpp"
#include "monitor/collector.hpp"
#include "monitor/config.hpp"

namespace likwid::monitor {

struct AgentConfig {
  MonitorConfig monitor;       ///< per-machine configuration
  int num_machines = 1;
  double duration_seconds = 1.0;  ///< simulated time run() covers
};

class Agent {
 public:
  explicit Agent(AgentConfig config);

  /// One sampling interval on every machine of the fleet.
  void step();

  /// Step until `duration_seconds` of simulated time is covered
  /// (ceil(duration / interval) steps).
  void run();

  std::uint64_t steps() const noexcept { return steps_; }
  const AgentConfig& config() const noexcept { return cfg_; }
  const std::vector<std::unique_ptr<Collector>>& collectors() const noexcept {
    return collectors_;
  }

  /// Windowed rollups of every machine, fleet-ordered by machine id.
  std::vector<SeriesPoint> rollups() const;

 private:
  AgentConfig cfg_;
  std::vector<std::unique_ptr<Collector>> collectors_;
  std::uint64_t steps_ = 0;
};

}  // namespace likwid::monitor
