// health.hpp — per-node health state of the monitoring fleet.
//
// The supervision layer (agent.cpp) classifies every node as healthy,
// degraded or quarantined from the faults its sampling steps produce:
//
//   healthy ──fault──▶ degraded ──`quarantine_after` consecutive──▶ quarantined
//      ▲                   │
//      └─`recover_after` consecutive clean samples─┘
//
// Quarantine is terminal for the run: a node whose device keeps failing is
// excluded from aggregation (its windows would be garbage) and reported,
// rather than poisoning fleet rollups or killing the whole run — the
// self-healing stance of production monitoring stacks (Röhl et al. 2017).
// The registry is the one fleet-wide mutable record shared by workers, the
// aggregation thread and the reporting path, so it owns a mutex and is
// annotated for clang thread-safety analysis.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace likwid::monitor {

enum class NodeHealth {
  kHealthy,      ///< producing valid samples
  kDegraded,     ///< recent fault or lost batch; still sampled
  kQuarantined,  ///< persistent faults; excluded from aggregation
};

std::string_view to_string(NodeHealth state) noexcept;

/// Point-in-time health record of one node, for reports and tests.
struct NodeHealthSnapshot {
  int machine_id = 0;
  NodeHealth state = NodeHealth::kHealthy;
  std::uint64_t step_faults = 0;    ///< sampling steps that threw
  std::uint64_t samples_ok = 0;     ///< sampling steps that succeeded
  std::uint64_t batches_lost = 0;   ///< transport batches attributed lost
  std::string last_error;           ///< message of the most recent fault
};

class HealthRegistry {
 public:
  /// `quarantine_after` consecutive faulted steps quarantine a node;
  /// `recover_after` consecutive clean steps return a degraded node to
  /// healthy. Both must be >= 1.
  HealthRegistry(int num_nodes, int quarantine_after, int recover_after);

  /// A sampling step of `node` succeeded.
  void record_sample_ok(int node);

  /// A sampling step of `node` threw. Returns the node's resulting state
  /// so the caller can react (skip the node, log the transition) without a
  /// second lock round-trip.
  NodeHealth record_fault(int node, const std::string& error);

  /// A transport batch of `node` was dropped (deadline, dead aggregator,
  /// or quarantine flush). Marks the node degraded unless quarantined.
  void record_lost_batch(int node);

  /// A worker thread was restarted by the supervisor.
  void record_worker_restart();

  bool quarantined(int node) const;
  NodeHealth state(int node) const;
  NodeHealthSnapshot snapshot(int node) const;
  std::vector<NodeHealthSnapshot> snapshots() const;

  /// Ids of quarantined nodes, ascending.
  std::vector<int> quarantined_nodes() const;

  std::uint64_t worker_restarts() const;
  int num_nodes() const noexcept { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    NodeHealth state = NodeHealth::kHealthy;
    std::uint64_t step_faults = 0;
    std::uint64_t samples_ok = 0;
    std::uint64_t batches_lost = 0;
    std::uint64_t consecutive_faults = 0;
    std::uint64_t consecutive_ok = 0;
    std::string last_error;
  };

  const int quarantine_after_;
  const int recover_after_;
  mutable util::Mutex mutex_;
  std::vector<Node> nodes_ LIKWID_GUARDED_BY(mutex_);
  std::uint64_t worker_restarts_ LIKWID_GUARDED_BY(mutex_) = 0;
};

}  // namespace likwid::monitor
