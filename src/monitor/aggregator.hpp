// aggregator.hpp — windowed statistical rollups over monitoring samples.
//
// "Best practices for HPM-assisted performance engineering" (Treibig et
// al., 2012) argues raw per-interval counter streams are too noisy and too
// voluminous to act on; monitoring wants derived metrics reduced twice:
// spatially (cpus -> node) and temporally (samples -> window statistics).
// node_reduce() does the spatial step with per-metric semantics (rates and
// volumes add across cpus, ratios average, runtimes take the slowest cpu);
// Aggregator does the temporal step, closing a window every
// `window_samples` samples of the same group and emitting min/avg/max/p95.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "monitor/config.hpp"

namespace likwid::monitor {

/// Statistics of one metric over one window.
struct WindowStats {
  double min = 0;
  double avg = 0;
  double max = 0;
  double p95 = 0;  ///< nearest-rank 95th percentile
  std::size_t count = 0;
};

/// One rollup row of the exported series: a (machine, window, group,
/// metric) cell with its window statistics.
struct SeriesPoint {
  int machine_id = 0;
  int window = 0;      ///< per-machine window index, oldest retained = 0
  double t_start = 0;  ///< first sample's interval start
  double t_end = 0;    ///< last sample's interval end
  std::string group;
  std::string metric;
  WindowStats stats;
};

/// Nearest-rank statistics over `values`; requires a non-empty vector.
WindowStats compute_stats(std::vector<double> values);

/// Reduce a per-cpu metric row to one node-level value: metrics named as
/// rates ("... MBytes/s", "... MFlops/s") or volumes ("[GBytes]") sum
/// across cpus, "Runtime [s]" takes the slowest cpu, everything else
/// (CPI, miss ratios, ...) averages.
double node_reduce(const std::string& metric_name,
                   const std::map<int, double>& per_cpu);

class Aggregator {
 public:
  /// Windows close after `window_samples` consecutive samples of the same
  /// group; a trailing partial window is emitted with its actual count.
  explicit Aggregator(int window_samples);

  /// Roll up the retained samples of one machine, oldest first.
  std::vector<SeriesPoint> rollup(int machine_id, const SampleRing& ring) const;

  int window_samples() const noexcept { return window_samples_; }

 private:
  int window_samples_;
};

}  // namespace likwid::monitor
