// aggregator.hpp — windowed statistical rollups over monitoring samples.
//
// "Best practices for HPM-assisted performance engineering" (Treibig et
// al., 2012) argues raw per-interval counter streams are too noisy and too
// voluminous to act on; monitoring wants derived metrics reduced twice:
// spatially (cpus -> node) and temporally (samples -> window statistics).
// The spatial step runs per sample through the schema's precomputed
// ReduceKind (rates and volumes add across cpus, ratios average, runtimes
// take the slowest cpu — see reduce_kind_of()); Aggregator does the
// temporal step, closing a window every `window_samples` samples of the
// same group and emitting min/avg/max/p95. Groups and metrics travel as
// interned ids; the series writers resolve them back to strings.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/name_table.hpp"
#include "monitor/config.hpp"

namespace likwid::monitor {

/// Statistics of one metric over one window.
struct WindowStats {
  double min = 0;
  double avg = 0;
  double max = 0;
  double p95 = 0;  ///< nearest-rank 95th percentile
  std::size_t count = 0;
};

/// One rollup row of the exported series: a (machine, window, group,
/// metric) cell with its window statistics.
struct SeriesPoint {
  int machine_id = 0;
  int window = 0;      ///< per-machine window index, oldest retained = 0
  double t_start = 0;  ///< first sample's interval start
  double t_end = 0;    ///< last sample's interval end
  core::NameId group_id = core::kInvalidNameId;
  core::NameId metric_id = core::kInvalidNameId;
  WindowStats stats;

  const std::string& group() const { return core::resolve_name(group_id); }
  const std::string& metric() const { return core::resolve_name(metric_id); }
};

/// Nearest-rank statistics over `values`; requires a non-empty vector.
/// Takes the scratch by reference and may reorder it (std::nth_element) —
/// callers that need the original order must copy first.
WindowStats compute_stats(std::vector<double>& values);

/// Reduce a per-cpu metric row to one node-level value by display-name
/// classification; the hot path precomputes reduce_kind_of() once per
/// metric instead (see MetricSchema).
double node_reduce(const std::string& metric_name,
                   const std::map<int, double>& per_cpu);

class Aggregator {
 public:
  /// Windows close after `window_samples` consecutive samples of the same
  /// group; a trailing partial window is emitted with its actual count.
  explicit Aggregator(int window_samples);

  /// Roll up the retained samples of one machine, oldest first.
  std::vector<SeriesPoint> rollup(int machine_id, const SampleRing& ring) const;

  int window_samples() const noexcept { return window_samples_; }

 private:
  int window_samples_;
};

}  // namespace likwid::monitor
