// aggregator.hpp — windowed statistical rollups over monitoring samples.
//
// "Best practices for HPM-assisted performance engineering" (Treibig et
// al., 2012) argues raw per-interval counter streams are too noisy and too
// voluminous to act on; monitoring wants derived metrics reduced twice:
// spatially (cpus -> node) and temporally (samples -> window statistics).
// The spatial step runs per sample through the schema's precomputed
// ReduceKind (rates and volumes add across cpus, ratios average, runtimes
// take the slowest cpu — see reduce_kind_of()); Aggregator does the
// temporal step, closing a window every `window_samples` samples of the
// same group and emitting min/avg/max/p95. Groups and metrics travel as
// interned ids; the series writers resolve them back to strings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/name_table.hpp"
#include "monitor/config.hpp"

namespace likwid::monitor {

/// Statistics of one metric over one window.
struct WindowStats {
  double min = 0;
  double avg = 0;
  double max = 0;
  double p95 = 0;  ///< nearest-rank 95th percentile
  std::size_t count = 0;
};

/// One rollup row of the exported series: a (machine, window, group,
/// metric) cell with its window statistics.
struct SeriesPoint {
  int machine_id = 0;
  int window = 0;      ///< per-machine window index, oldest retained = 0
  double t_start = 0;  ///< first sample's interval start
  double t_end = 0;    ///< last sample's interval end
  core::NameId group_id = core::kInvalidNameId;
  core::NameId metric_id = core::kInvalidNameId;
  WindowStats stats;

  const std::string& group() const { return core::resolve_name(group_id); }
  const std::string& metric() const { return core::resolve_name(metric_id); }
};

/// Nearest-rank statistics over `values`; requires a non-empty vector.
/// Takes the scratch by reference and may reorder it (std::nth_element) —
/// callers that need the original order must copy first.
WindowStats compute_stats(std::vector<double>& values);

/// Reduce a per-cpu metric row to one node-level value by display-name
/// classification; the hot path precomputes reduce_kind_of() once per
/// metric instead (see MetricSchema).
double node_reduce(const std::string& metric_name,
                   const std::map<int, double>& per_cpu);

/// Streaming per-machine window folder: feed it one machine's samples in
/// production order (add), flush the trailing partials (finish), read the
/// emitted rollup rows (points). One folder per machine is exactly the
/// sharded fold state a fleet `NodeTask` carries through the work-stealing
/// scheduler (scheduler.hpp); Aggregator::rollup() runs the identical fold
/// over a retained ring, so batch and streaming aggregation emit the same
/// rows by construction. The collector daemon's query path folds with it
/// too, which is what makes collector rollups bit-equal to in-process ones.
///
/// Thread-safety: none. A folder is owned by whichever single thread folds
/// that machine — under the fleet scheduler, the worker currently holding
/// the machine's task (exclusive by construction, even across steals).
class WindowFolder {
 public:
  /// Windows close after `window_samples` consecutive samples of the same
  /// group; a trailing partial window is emitted with its actual count.
  WindowFolder(int machine_id, int window_samples);

  /// Fold one sample; closes (and emits) a window when it fills.
  void add(const Sample& sample);

  /// Flush the open partial windows, oldest window start first, so the
  /// emitted window indices stay in time order across groups.
  void finish();

  /// Rows emitted so far, in window order.
  const std::vector<SeriesPoint>& points() const noexcept { return points_; }
  std::vector<SeriesPoint> take_points() { return std::move(points_); }

  int machine_id() const noexcept { return machine_id_; }
  std::uint64_t samples_folded() const noexcept { return samples_folded_; }

 private:
  /// One group's currently filling window. With rotation the groups
  /// interleave in the sample stream; each group fills its own windows at
  /// its own cadence, exactly like a per-group downsampler.
  struct OpenWindow {
    double t_start = 0;
    double t_end = 0;
    std::shared_ptr<const MetricSchema> schema;
    /// metric slot -> its values in this window. Cleared (capacity kept)
    /// on flush, so one buffer set serves every window of the group.
    std::vector<std::vector<double>> series;
    std::size_t samples = 0;
  };

  void flush(OpenWindow& window);

  int machine_id_;
  int window_samples_;
  int window_index_ = 0;
  std::uint64_t samples_folded_ = 0;
  std::map<core::NameId, OpenWindow> open_;
  std::vector<SeriesPoint> points_;
};

class Aggregator {
 public:
  /// Windows close after `window_samples` consecutive samples of the same
  /// group; a trailing partial window is emitted with its actual count.
  explicit Aggregator(int window_samples);

  /// Roll up the retained samples of one machine, oldest first.
  std::vector<SeriesPoint> rollup(int machine_id, const SampleRing& ring) const;

  int window_samples() const noexcept { return window_samples_; }

 private:
  int window_samples_;
};

}  // namespace likwid::monitor
