// scheduler.hpp — work-stealing task scheduler primitives of the fleet.
//
// The first threaded Agent (PR 4) split the fleet into fixed worker
// shards publishing Sample batches through SPSC rings into one live
// aggregation thread — and the aggregation thread was the serial
// bottleneck: at 8 workers the fleet ran BELOW serial speed
// (BENCH_agent_fleet.json recorded 0.84x) because every sample crossed a
// queue and one consumer folded all of them. The LIKWID Monitoring Stack
// paper (Röhl et al. 2017) is explicit that fleet monitoring lives or
// dies on the aggregation path, so this layer replaces the split with a
// task-scheduler architecture (cf. production schedulers like tsurugi's
// tateyama task_scheduler: per-worker local queues plus stealing):
//
//   * A NodeTask is the unit of scheduling: one node's collector plus its
//     WindowFolder. The worker HOLDING a task steps the collector and
//     folds each sample immediately into the task's folder — partial
//     folds stay worker-local and merge into the fleet series only when
//     a window closes (a SeriesPoint row). No aggregation thread, no
//     transport ring, no cross-thread sample hop on the hot path.
//   * Each worker owns a TaskQueue (a deque): it pops work from the
//     front; an idle worker steals from the BACK of the busiest other
//     queue (classic work-stealing polarity — the thief takes the work
//     the owner would reach last) and migrates the task to its own queue.
//   * A task executes in SLICES of up to `batch` consecutive sampling
//     steps before re-queueing, so stealing has a bounded granularity.
//     BatchAutotuner picks the slice length from the observed per-step
//     fold latency when FleetConfig::batch_samples is 0 (autotune).
//
// Exclusive task ownership is what keeps threaded rollups bit-equal to
// serial under stealing: a node's collector is only ever stepped by the
// worker holding its task, so its sample stream is produced in sequence
// order and folded in sequence order into its own folder, no matter how
// often the task migrates (tests/fleet_stress_test.cpp asserts exact
// equality at 2/4/8 workers with forced steals).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "monitor/aggregator.hpp"
#include "util/thread_annotations.hpp"

namespace likwid::monitor {

class Collector;

/// One node's schedulable work: its collector, its partial window folds
/// and its progress through the run. Confined to the worker currently
/// holding it (queues hand tasks over with their mutex, which orders the
/// plain fields); the atomics are the exception — they feed the progress
/// thread while the task is in flight.
struct NodeTask {
  int machine = 0;
  Collector* collector = nullptr;
  /// Partial min/avg/max/p95 folds of this node. Rows merge into the
  /// fleet series only at window close; the open windows never leave the
  /// task.
  WindowFolder folder;
  /// Sampling-step attempts consumed so far (a faulted step consumes its
  /// attempt too, exactly like the serial loop).
  std::uint64_t next_step = 0;
  std::uint64_t total_steps = 0;  ///< attempt budget of the run
  /// Times this task was acquired by stealing (it migrated queues).
  std::uint64_t steals = 0;
  /// Live fold counters for the progress thread (monotonic).
  std::atomic<std::uint64_t> samples_folded{0};
  std::atomic<std::uint64_t> rows_emitted{0};

  NodeTask(int machine_id, Collector* c, int window_samples,
           std::uint64_t steps)
      : machine(machine_id),
        collector(c),
        folder(machine_id, window_samples),
        total_steps(steps) {}

  bool done() const noexcept { return next_step >= total_steps; }
};

/// One worker's task deque. The owner pops from the front, thieves steal
/// from the back. A mutex (annotated for clang thread-safety analysis,
/// per the repo's locking policy) instead of a lock-free Chase-Lev deque:
/// the queue is touched once per SLICE, not per sample, so at fleet scale
/// (tens of nodes, batch >= 1 samples per slice) the lock is nowhere near
/// the hot path — the hot path is collector->step() + folder.add().
class TaskQueue {
 public:
  void push(NodeTask* task) {
    const util::MutexLock lock(mutex_);
    tasks_.push_back(task);
  }

  /// Owner end; nullptr when empty.
  NodeTask* pop() {
    const util::MutexLock lock(mutex_);
    if (tasks_.empty()) return nullptr;
    NodeTask* task = tasks_.front();
    tasks_.pop_front();
    return task;
  }

  /// Thief end; nullptr when empty.
  NodeTask* steal() {
    const util::MutexLock lock(mutex_);
    if (tasks_.empty()) return nullptr;
    NodeTask* task = tasks_.back();
    tasks_.pop_back();
    return task;
  }

  std::size_t size() const {
    const util::MutexLock lock(mutex_);
    return tasks_.size();
  }

 private:
  mutable util::Mutex mutex_;
  std::deque<NodeTask*> tasks_ LIKWID_GUARDED_BY(mutex_);
};

/// Picks the slice length (sampling steps a worker runs per task
/// acquisition) from the observed per-step latency. Short slices keep
/// steal granularity fine (load balance); long slices amortize the queue
/// round trip. The tuner targets a fixed slice duration and keeps an EWMA
/// of the measured per-step cost, so slow nodes get short slices and fast
/// nodes long ones. One instance per worker — no sharing, no contention —
/// and purely a scheduling choice: slice boundaries cannot change any
/// node's sample stream or fold order, so autotuning never touches
/// bit-equality.
class BatchAutotuner {
 public:
  /// `configured` == 0 autotunes; any other value is pinned (the tuner
  /// just reports it). `target_slice_seconds` is the slice duration the
  /// tuner aims for when autotuning.
  explicit BatchAutotuner(std::size_t configured,
                          double target_slice_seconds = 2e-3)
      : configured_(configured),
        target_seconds_(target_slice_seconds),
        current_(configured == 0 ? 1 : configured) {}

  bool autotuning() const noexcept { return configured_ == 0; }
  std::size_t current() const noexcept { return current_; }

  /// Record one executed slice (`steps` steps in `seconds` wall time) and
  /// update the slice length for the next acquisition.
  void observe(std::size_t steps, double seconds) noexcept {
    if (!autotuning() || steps == 0 || seconds <= 0) return;
    const double per_step = seconds / static_cast<double>(steps);
    ewma_step_seconds_ = ewma_step_seconds_ <= 0
                             ? per_step
                             : 0.7 * ewma_step_seconds_ + 0.3 * per_step;
    const double want = target_seconds_ / ewma_step_seconds_;
    std::size_t next = want < 1.0 ? 1 : static_cast<std::size_t>(want);
    if (next > kMaxSlice) next = kMaxSlice;
    current_ = next;
  }

  /// Steps-per-slice ceiling: even on very cheap nodes a slice stays
  /// small enough that thieves see work surface regularly.
  static constexpr std::size_t kMaxSlice = 64;

 private:
  std::size_t configured_;
  double target_seconds_;
  std::size_t current_;
  double ewma_step_seconds_ = 0;
};

}  // namespace likwid::monitor
