#include "monitor/agent.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <iterator>
#include <thread>
#include <utility>

#include "fault/plan.hpp"
#include "monitor/spsc_ring.hpp"
#include "util/logging.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace likwid::monitor {

namespace {

/// Terminal-failure latch shared by the worker pool and the aggregation
/// thread. Under supervision only failures the policy cannot absorb land
/// here — a worker out of restarts, or the aggregation thread dying — and
/// the joining thread rethrows the first one. The mutex is an annotated
/// capability so a future unlocked read of the slot fails -Wthread-safety
/// instead of TSan.
class FailureLatch {
 public:
  /// Store the in-flight exception if the latch is still empty.
  void record() noexcept {
    const util::MutexLock lock(mutex_);
    if (!failure_) failure_ = std::current_exception();
  }

  /// The first recorded failure (nullptr when every thread finished
  /// clean). Only meaningful after the recording threads joined, but
  /// locked regardless — the latch does not know its callers' joins.
  std::exception_ptr first() const {
    const util::MutexLock lock(mutex_);
    return failure_;
  }

 private:
  mutable util::Mutex mutex_;
  std::exception_ptr failure_ LIKWID_GUARDED_BY(mutex_);
};

}  // namespace

int FleetConfig::resolved_threads() const {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Agent::Agent(AgentConfig config) : cfg_(std::move(config)) {
  LIKWID_REQUIRE(cfg_.num_machines > 0, "agent needs at least one machine");
  LIKWID_REQUIRE(cfg_.duration_seconds > 0, "duration must be positive");
  LIKWID_REQUIRE(cfg_.fleet.num_threads >= 0,
                 "worker thread count cannot be negative");
  LIKWID_REQUIRE(cfg_.fleet.batch_samples > 0,
                 "batch size must be positive");
  LIKWID_REQUIRE(cfg_.fleet.queue_capacity > 0,
                 "queue capacity must be positive");
  LIKWID_REQUIRE(cfg_.fleet.supervision.max_restarts >= 0,
                 "max restarts cannot be negative");
  LIKWID_REQUIRE(cfg_.fleet.publish_deadline_seconds > 0,
                 "publish deadline must be positive");
  health_ = std::make_unique<HealthRegistry>(
      cfg_.num_machines, cfg_.fleet.supervision.quarantine_after,
      cfg_.fleet.supervision.recover_after);
  collectors_.reserve(static_cast<std::size_t>(cfg_.num_machines));
  for (int id = 0; id < cfg_.num_machines; ++id) {
    collectors_.push_back(std::make_unique<Collector>(id, cfg_.monitor));
  }
}

void Agent::step() {
  // Serial stepping invalidates a previous threaded run's folded
  // snapshot: rollups() falls back to aggregating the retention rings,
  // which include the new samples.
  folded_.clear();
  transport_ = FleetTransportStats{};
  const bool supervised = cfg_.monitor.fault_plan != nullptr;
  for (auto& collector : collectors_) {
    const int id = collector->machine_id();
    if (!supervised) {
      collector->step();
      continue;
    }
    if (health_->quarantined(id)) continue;
    try {
      collector->step();
      health_->record_sample_ok(id);
    } catch (const std::exception& e) {
      if (health_->record_fault(id, e.what()) == NodeHealth::kQuarantined) {
        LIKWID_WARN("fleet: machine " << id << " quarantined: " << e.what());
      }
    }
  }
  ++steps_;
}

void Agent::run() {
  const auto total = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(cfg_.duration_seconds / cfg_.monitor.interval_seconds -
                    1e-9)),
      1);
  if (plans_threaded()) {
    run_threaded(total, std::max(planned_workers(), 1));
  } else {
    run_serial(total);
  }
}

int Agent::planned_workers() const noexcept {
  return std::min(cfg_.fleet.resolved_threads(), cfg_.num_machines);
}

bool Agent::plans_threaded() const noexcept {
  return planned_workers() > 1 || cfg_.fleet.force_threaded;
}

void Agent::run_serial(std::uint64_t total_steps) {
  for (std::uint64_t s = total_steps; s > 0; --s) {
    step();
  }
}

void Agent::run_threaded(std::uint64_t total_steps, int workers) {
  const std::size_t machines = collectors_.size();
  using SampleBatch = std::vector<Sample>;
  const fault::FaultPlan* plan = cfg_.monitor.fault_plan.get();
  const SupervisionConfig& sup = cfg_.fleet.supervision;
  // With a fault plan, node-level step failures are expected hardware
  // behavior and flow into the health registry; without one a throwing
  // collector is a bug and crashes its worker (which supervision then
  // retries, surfacing the failure after max_restarts).
  const bool supervised = plan != nullptr;

  // One SPSC transport ring per collector: its worker is the single
  // producer, the aggregation thread the single consumer.
  std::vector<std::unique_ptr<SpscRing<SampleBatch>>> queues;
  queues.reserve(machines);
  for (std::size_t i = 0; i < machines; ++i) {
    queues.push_back(
        std::make_unique<SpscRing<SampleBatch>>(cfg_.fleet.queue_capacity));
  }

  std::atomic<bool> producers_done{false};
  std::atomic<bool> aggregation_alive{true};
  FailureLatch failure;

  // Loss accounting. Every abandoned batch is attributed to exactly one
  // reason and one machine — samples missing from the folded windows bias
  // the aggregates, and that bias must never be silent. `lost_per_machine`
  // elements are each written only by the machine's owning worker and read
  // after the join.
  std::atomic<std::uint64_t> lost_deadline{0};
  std::atomic<std::uint64_t> lost_aggregator_down{0};
  std::atomic<std::uint64_t> lost_quarantined{0};
  std::vector<std::uint64_t> lost_per_machine(machines, 0);
  util::LogRateLimiter give_up_log(16);

  // Publish with bounded backpressure: a full transport ring means the
  // aggregation thread is behind, so the worker retries — but only within
  // the publish deadline. A dead aggregation thread or an expired deadline
  // gives the batch up as lost (attributed, health-recorded, rate-limit
  // logged) instead of wedging the pool on a ring nobody drains.
  const auto publish = [&](std::size_t machine, SampleBatch&& batch) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                cfg_.fleet.publish_deadline_seconds));
    while (!queues[machine]->try_push(std::move(batch))) {
      const bool agg_down =
          !aggregation_alive.load(std::memory_order_acquire);
      if (agg_down || std::chrono::steady_clock::now() >= deadline) {
        (agg_down ? lost_aggregator_down : lost_deadline)
            .fetch_add(1, std::memory_order_relaxed);
        ++lost_per_machine[machine];
        health_->record_lost_batch(static_cast<int>(machine));
        if (give_up_log.tick()) {
          LIKWID_WARN("transport: gave up batch of machine "
                      << machine
                      << (agg_down ? " (aggregation thread down); "
                                   : " (publish deadline exceeded); ")
                      << give_up_log.occurrences() << " give-up(s) so far");
        }
        return;
      }
      std::this_thread::yield();
    }
  };

  // A worker's progress lives OUTSIDE its try scope so a restart resumes
  // exactly where the crash interrupted — already-stepped collectors are
  // not re-stepped, which is what keeps healthy-node sample streams (and
  // therefore the folded windows) bit-equal to a crash-free run.
  struct WorkerState {
    std::uint64_t step = 0;        ///< next fleet step to run
    std::size_t node = 0;          ///< next collector (absolute index)
    std::size_t crash_idx = 0;     ///< injected crashes consumed
    std::vector<SampleBatch> batches;
    bool flushed = false;
  };

  const auto worker_body = [&](WorkerState& st, std::size_t lo,
                               std::size_t hi,
                               const std::vector<std::uint64_t>& crashes) {
    while (st.step < total_steps) {
      if (st.node == lo && st.crash_idx < crashes.size() &&
          crashes[st.crash_idx] == st.step) {
        // Consume the schedule entry BEFORE throwing: the restarted body
        // must resume past this crash, not re-crash forever.
        ++st.crash_idx;
        throw_error(ErrorCode::kInternal,
                    "injected worker crash at step " +
                        std::to_string(st.step));
      }
      while (st.node < hi) {
        const std::size_t i = st.node;
        const int id = static_cast<int>(i);
        SampleBatch& batch = st.batches[i - lo];
        if (supervised && health_->quarantined(id)) {
          ++st.node;
          continue;
        }
        if (supervised) {
          try {
            collectors_[i]->step();
          } catch (const std::exception& e) {
            if (health_->record_fault(id, e.what()) ==
                NodeHealth::kQuarantined) {
              // The node's in-flight batch may hold samples taken while
              // its device was already failing — discard, attributed.
              if (!batch.empty()) {
                lost_quarantined.fetch_add(1, std::memory_order_relaxed);
                ++lost_per_machine[i];
                health_->record_lost_batch(id);
                batch.clear();
              }
              LIKWID_WARN("fleet: machine " << id
                                            << " quarantined: " << e.what());
            }
            ++st.node;
            continue;
          }
          health_->record_sample_ok(id);
        } else {
          collectors_[i]->step();
        }
        batch.push_back(collectors_[i]->samples().back());
        if (batch.size() >= cfg_.fleet.batch_samples) {
          publish(i, std::move(batch));
          batch = SampleBatch();
        }
        ++st.node;
      }
      st.node = lo;
      ++st.step;
    }
    if (!st.flushed) {
      st.flushed = true;
      for (std::size_t i = lo; i < hi; ++i) {
        if (!st.batches[i - lo].empty()) {
          publish(i, std::move(st.batches[i - lo]));
        }
      }
    }
  };

  // In-place supervision: the thread survives its body's exceptions and
  // re-enters it (state preserved) after capped exponential backoff with
  // a deterministic plan-drawn jitter. Out of restarts — or no consumer
  // left to publish to — the failure is terminal and latched.
  const auto worker_thread = [&](int w, std::size_t lo, std::size_t hi) {
    WorkerState st;
    st.node = lo;
    st.batches.assign(hi - lo, SampleBatch());
    const std::vector<std::uint64_t> crashes =
        plan != nullptr
            ? plan->crash_steps(w, workers, total_steps)
            : std::vector<std::uint64_t>{};
    for (int restarts = 0;;) {
      try {
        worker_body(st, lo, hi, crashes);
        return;
      } catch (...) {
        if (restarts >= sup.max_restarts ||
            !aggregation_alive.load(std::memory_order_acquire)) {
          failure.record();
          return;
        }
        ++restarts;
        health_->record_worker_restart();
        double delay_ms =
            std::min(sup.backoff_initial_ms *
                         std::pow(2.0, static_cast<double>(restarts - 1)),
                     sup.backoff_max_ms);
        // Jitter by 0.5x..1.5x to decorrelate simultaneous restarts; the
        // draw comes from the plan so chaos runs stay reproducible.
        if (plan != nullptr) {
          delay_ms *= 0.5 + plan->backoff_jitter(w, restarts);
        }
        LIKWID_WARN("fleet: worker " << w << " crashed; restart " << restarts
                                     << "/" << sup.max_restarts
                                     << " after " << delay_ms << " ms");
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
    }
  };

  const auto aggregator_body = [&]() {
    try {
      std::vector<WindowFolder> folders;
      folders.reserve(machines);
      for (std::size_t i = 0; i < machines; ++i) {
        folders.emplace_back(static_cast<int>(i),
                             cfg_.monitor.window_samples);
      }
      const auto t0 = std::chrono::steady_clock::now();
      auto last_report = t0;
      std::vector<SampleBatch> burst;
      for (;;) {
        // Injected slow consumer: the fault layer's transport-pressure
        // knob. Sleeping here backs the rings up exactly like an
        // overloaded real aggregation service.
        if (plan != nullptr && plan->slow_consumer_us() > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(plan->slow_consumer_us()));
        }
        // Load the done flag BEFORE draining: if it was already set and
        // the drain still finds nothing, no producer can publish again.
        const bool done = producers_done.load(std::memory_order_acquire);
        bool any = false;
        for (std::size_t i = 0; i < machines; ++i) {
          burst.clear();
          if (queues[i]->drain_into(burst, cfg_.fleet.queue_capacity) > 0) {
            for (const SampleBatch& batch : burst) {
              for (const Sample& s : batch) folders[i].add(s);
            }
            any = true;
          }
        }
        if (progress_) {
          const auto now = std::chrono::steady_clock::now();
          if (std::chrono::duration<double>(now - last_report).count() >=
              progress_interval_seconds_) {
            last_report = now;
            FleetProgress p;
            p.elapsed_seconds =
                std::chrono::duration<double>(now - t0).count();
            for (const WindowFolder& f : folders) {
              p.samples_folded += f.samples_folded();
              p.rows_emitted += f.points().size();
            }
            progress_(p);
          }
        }
        if (!any) {
          if (done) break;
          std::this_thread::yield();
        }
      }
      folded_.assign(machines, {});
      for (std::size_t i = 0; i < machines; ++i) {
        folders[i].finish();
        folded_[i] = folders[i].take_points();
      }
    } catch (...) {
      failure.record();
      aggregation_alive.store(false, std::memory_order_release);
    }
  };

  folded_.clear();
  std::thread aggregation(aggregator_body);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  // Contiguous shards, sized ceil(machines / workers): worker w steps
  // collectors [w*per, min((w+1)*per, machines)).
  const std::size_t per =
      (machines + static_cast<std::size_t>(workers) - 1) /
      static_cast<std::size_t>(workers);
  for (int w = 0; w < workers; ++w) {
    const std::size_t lo =
        std::min(static_cast<std::size_t>(w) * per, machines);
    const std::size_t hi = std::min(lo + per, machines);
    if (lo >= hi) break;
    pool.emplace_back(worker_thread, w, lo, hi);
  }
  for (std::thread& t : pool) t.join();
  producers_done.store(true, std::memory_order_release);
  aggregation.join();
  // Harvest the transport accounting before the rings go away: rejected()
  // was previously counted but never surfaced, leaving backpressure (and
  // any lost batches) invisible to tools and tests.
  transport_ = FleetTransportStats{};
  transport_.rejects_per_machine.reserve(machines);
  for (std::size_t i = 0; i < machines; ++i) {
    transport_.batches_published += queues[i]->pushed();
    transport_.rejects += queues[i]->rejected();
    transport_.rejects_per_machine.push_back(queues[i]->rejected());
  }
  transport_.lost_deadline = lost_deadline.load(std::memory_order_relaxed);
  transport_.lost_aggregator_down =
      lost_aggregator_down.load(std::memory_order_relaxed);
  transport_.lost_quarantined =
      lost_quarantined.load(std::memory_order_relaxed);
  transport_.batches_lost = transport_.lost_deadline +
                            transport_.lost_aggregator_down +
                            transport_.lost_quarantined;
  transport_.lost_per_machine = std::move(lost_per_machine);
  if (const std::exception_ptr first = failure.first()) {
    // A failed run must not present partially folded windows as valid
    // rollups; fall back to the retention rings.
    folded_.clear();
    std::rethrow_exception(first);
  }
  steps_ += total_steps;
}

std::vector<SeriesPoint> Agent::rollups() const {
  std::vector<SeriesPoint> out;
  if (!folded_.empty()) {
    for (std::size_t i = 0; i < folded_.size(); ++i) {
      if (health_->quarantined(static_cast<int>(i))) continue;
      out.insert(out.end(), folded_[i].begin(), folded_[i].end());
    }
    return out;
  }
  const Aggregator aggregator(cfg_.monitor.window_samples);
  for (const auto& collector : collectors_) {
    if (health_->quarantined(collector->machine_id())) continue;
    auto points =
        aggregator.rollup(collector->machine_id(), collector->samples());
    out.insert(out.end(), std::make_move_iterator(points.begin()),
               std::make_move_iterator(points.end()));
  }
  return out;
}

api::ResultTable Agent::health_report() const {
  api::ResultTable table;
  table.group = "NODE_HEALTH";
  table.has_metrics = true;
  table.seconds = cfg_.duration_seconds;
  api::ResultTable::MetricRow state{
      "Health state (0=healthy 1=degraded 2=quarantined)", {}};
  api::ResultTable::MetricRow faults{"Step faults", {}};
  api::ResultTable::MetricRow ok{"Samples ok", {}};
  api::ResultTable::MetricRow lost{"Batches lost", {}};
  api::ResultTable::MetricRow rejects{"Transport rejects", {}};
  for (const NodeHealthSnapshot& s : health_->snapshots()) {
    table.cpus.push_back(s.machine_id);
    state.values.push_back(static_cast<double>(static_cast<int>(s.state)));
    faults.values.push_back(static_cast<double>(s.step_faults));
    ok.values.push_back(static_cast<double>(s.samples_ok));
    lost.values.push_back(static_cast<double>(s.batches_lost));
    const auto id = static_cast<std::size_t>(s.machine_id);
    rejects.values.push_back(
        id < transport_.rejects_per_machine.size()
            ? static_cast<double>(transport_.rejects_per_machine[id])
            : 0.0);
  }
  table.metrics = {std::move(state), std::move(faults), std::move(ok),
                   std::move(lost), std::move(rejects)};
  return table;
}

void Agent::set_progress(std::function<void(const FleetProgress&)> callback,
                         double interval_seconds) {
  LIKWID_REQUIRE(interval_seconds > 0,
                 "progress interval must be positive");
  progress_ = std::move(callback);
  progress_interval_seconds_ = interval_seconds;
}

}  // namespace likwid::monitor
