#include "monitor/agent.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <iterator>
#include <thread>
#include <utility>

#include "monitor/spsc_ring.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace likwid::monitor {

namespace {

/// First-failure latch shared by the worker pool and the aggregation
/// thread: every catch(...) records into it, the joining thread rethrows
/// the first exception. The mutex is an annotated capability so a future
/// unlocked read of the slot fails -Wthread-safety instead of TSan.
class FailureLatch {
 public:
  /// Store the in-flight exception if the latch is still empty.
  void record() noexcept {
    const util::MutexLock lock(mutex_);
    if (!failure_) failure_ = std::current_exception();
  }

  /// The first recorded failure (nullptr when every thread finished
  /// clean). Only meaningful after the recording threads joined, but
  /// locked regardless — the latch does not know its callers' joins.
  std::exception_ptr first() const {
    const util::MutexLock lock(mutex_);
    return failure_;
  }

 private:
  mutable util::Mutex mutex_;
  std::exception_ptr failure_ LIKWID_GUARDED_BY(mutex_);
};

}  // namespace

int FleetConfig::resolved_threads() const {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Agent::Agent(AgentConfig config) : cfg_(std::move(config)) {
  LIKWID_REQUIRE(cfg_.num_machines > 0, "agent needs at least one machine");
  LIKWID_REQUIRE(cfg_.duration_seconds > 0, "duration must be positive");
  LIKWID_REQUIRE(cfg_.fleet.num_threads >= 0,
                 "worker thread count cannot be negative");
  LIKWID_REQUIRE(cfg_.fleet.batch_samples > 0,
                 "batch size must be positive");
  LIKWID_REQUIRE(cfg_.fleet.queue_capacity > 0,
                 "queue capacity must be positive");
  collectors_.reserve(static_cast<std::size_t>(cfg_.num_machines));
  for (int id = 0; id < cfg_.num_machines; ++id) {
    collectors_.push_back(std::make_unique<Collector>(id, cfg_.monitor));
  }
}

void Agent::step() {
  // Serial stepping invalidates a previous threaded run's folded
  // snapshot: rollups() falls back to aggregating the retention rings,
  // which include the new samples.
  folded_.clear();
  transport_ = FleetTransportStats{};
  for (auto& collector : collectors_) {
    collector->step();
  }
  ++steps_;
}

void Agent::run() {
  const auto total = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(cfg_.duration_seconds / cfg_.monitor.interval_seconds -
                    1e-9)),
      1);
  if (plans_threaded()) {
    run_threaded(total, std::max(planned_workers(), 1));
  } else {
    run_serial(total);
  }
}

int Agent::planned_workers() const noexcept {
  return std::min(cfg_.fleet.resolved_threads(), cfg_.num_machines);
}

bool Agent::plans_threaded() const noexcept {
  return planned_workers() > 1 || cfg_.fleet.force_threaded;
}

void Agent::run_serial(std::uint64_t total_steps) {
  for (std::uint64_t s = total_steps; s > 0; --s) {
    step();
  }
}

void Agent::run_threaded(std::uint64_t total_steps, int workers) {
  const std::size_t machines = collectors_.size();
  using SampleBatch = std::vector<Sample>;

  // One SPSC transport ring per collector: its worker is the single
  // producer, the aggregation thread the single consumer.
  std::vector<std::unique_ptr<SpscRing<SampleBatch>>> queues;
  queues.reserve(machines);
  for (std::size_t i = 0; i < machines; ++i) {
    queues.push_back(
        std::make_unique<SpscRing<SampleBatch>>(cfg_.fleet.queue_capacity));
  }

  std::atomic<bool> producers_done{false};
  std::atomic<bool> aggregation_alive{true};
  FailureLatch failure;

  // Publish with bounded backpressure: a full transport ring means the
  // aggregation thread is behind, so the worker waits instead of losing
  // samples (monitoring retention may drop, aggregation must not). If the
  // aggregation thread died, stop waiting — the run is failing anyway and
  // spinning on a ring nobody drains would deadlock the pool. A batch
  // abandoned that way is counted: its samples are missing from the
  // folded windows, and that bias must never be silent.
  std::atomic<std::uint64_t> lost_batches{0};
  const auto publish = [&](std::size_t machine, SampleBatch&& batch) {
    while (!queues[machine]->try_push(std::move(batch))) {
      if (!aggregation_alive.load(std::memory_order_acquire)) {
        lost_batches.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::this_thread::yield();
    }
  };

  const auto worker_body = [&](std::size_t lo, std::size_t hi) {
    try {
      std::vector<SampleBatch> batches(hi - lo);
      for (std::uint64_t s = 0; s < total_steps; ++s) {
        for (std::size_t i = lo; i < hi; ++i) {
          collectors_[i]->step();
          SampleBatch& batch = batches[i - lo];
          batch.push_back(collectors_[i]->samples().back());
          if (batch.size() >= cfg_.fleet.batch_samples) {
            publish(i, std::move(batch));
            batch = SampleBatch();
          }
        }
      }
      for (std::size_t i = lo; i < hi; ++i) {
        if (!batches[i - lo].empty()) publish(i, std::move(batches[i - lo]));
      }
    } catch (...) {
      failure.record();
    }
  };

  const auto aggregator_body = [&]() {
    try {
      std::vector<WindowFolder> folders;
      folders.reserve(machines);
      for (std::size_t i = 0; i < machines; ++i) {
        folders.emplace_back(static_cast<int>(i),
                             cfg_.monitor.window_samples);
      }
      const auto t0 = std::chrono::steady_clock::now();
      auto last_report = t0;
      std::vector<SampleBatch> burst;
      for (;;) {
        // Load the done flag BEFORE draining: if it was already set and
        // the drain still finds nothing, no producer can publish again.
        const bool done = producers_done.load(std::memory_order_acquire);
        bool any = false;
        for (std::size_t i = 0; i < machines; ++i) {
          burst.clear();
          if (queues[i]->drain_into(burst, cfg_.fleet.queue_capacity) > 0) {
            for (const SampleBatch& batch : burst) {
              for (const Sample& s : batch) folders[i].add(s);
            }
            any = true;
          }
        }
        if (progress_) {
          const auto now = std::chrono::steady_clock::now();
          if (std::chrono::duration<double>(now - last_report).count() >=
              progress_interval_seconds_) {
            last_report = now;
            FleetProgress p;
            p.elapsed_seconds =
                std::chrono::duration<double>(now - t0).count();
            for (const WindowFolder& f : folders) {
              p.samples_folded += f.samples_folded();
              p.rows_emitted += f.points().size();
            }
            progress_(p);
          }
        }
        if (!any) {
          if (done) break;
          std::this_thread::yield();
        }
      }
      folded_.assign(machines, {});
      for (std::size_t i = 0; i < machines; ++i) {
        folders[i].finish();
        folded_[i] = folders[i].take_points();
      }
    } catch (...) {
      failure.record();
      aggregation_alive.store(false, std::memory_order_release);
    }
  };

  folded_.clear();
  std::thread aggregation(aggregator_body);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  // Contiguous shards, sized ceil(machines / workers): worker w steps
  // collectors [w*per, min((w+1)*per, machines)).
  const std::size_t per =
      (machines + static_cast<std::size_t>(workers) - 1) /
      static_cast<std::size_t>(workers);
  for (int w = 0; w < workers; ++w) {
    const std::size_t lo =
        std::min(static_cast<std::size_t>(w) * per, machines);
    const std::size_t hi = std::min(lo + per, machines);
    if (lo >= hi) break;
    pool.emplace_back(worker_body, lo, hi);
  }
  for (std::thread& t : pool) t.join();
  producers_done.store(true, std::memory_order_release);
  aggregation.join();
  // Harvest the transport accounting before the rings go away: rejected()
  // was previously counted but never surfaced, leaving backpressure (and
  // any lost batches) invisible to tools and tests.
  transport_ = FleetTransportStats{};
  transport_.rejects_per_machine.reserve(machines);
  for (std::size_t i = 0; i < machines; ++i) {
    transport_.batches_published += queues[i]->pushed();
    transport_.rejects += queues[i]->rejected();
    transport_.rejects_per_machine.push_back(queues[i]->rejected());
  }
  transport_.batches_lost = lost_batches.load(std::memory_order_relaxed);
  if (const std::exception_ptr first = failure.first()) {
    // A failed run must not present partially folded windows as valid
    // rollups; fall back to the retention rings.
    folded_.clear();
    std::rethrow_exception(first);
  }
  steps_ += total_steps;
}

std::vector<SeriesPoint> Agent::rollups() const {
  std::vector<SeriesPoint> out;
  if (!folded_.empty()) {
    for (const auto& machine_points : folded_) {
      out.insert(out.end(), machine_points.begin(), machine_points.end());
    }
    return out;
  }
  const Aggregator aggregator(cfg_.monitor.window_samples);
  for (const auto& collector : collectors_) {
    auto points =
        aggregator.rollup(collector->machine_id(), collector->samples());
    out.insert(out.end(), std::make_move_iterator(points.begin()),
               std::make_move_iterator(points.end()));
  }
  return out;
}

void Agent::set_progress(std::function<void(const FleetProgress&)> callback,
                         double interval_seconds) {
  LIKWID_REQUIRE(interval_seconds > 0,
                 "progress interval must be positive");
  progress_ = std::move(callback);
  progress_interval_seconds_ = interval_seconds;
}

}  // namespace likwid::monitor
