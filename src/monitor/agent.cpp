#include "monitor/agent.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <iterator>
#include <thread>
#include <utility>

#include "fault/plan.hpp"
#include "monitor/scheduler.hpp"
#include "util/logging.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace likwid::monitor {

namespace {

/// Terminal-failure latch shared by the worker pool. Under supervision
/// only failures the policy cannot absorb land here — a worker out of
/// restarts — and the joining thread rethrows the first one. The mutex is
/// an annotated capability so a future unlocked read of the slot fails
/// -Wthread-safety instead of TSan.
class FailureLatch {
 public:
  /// Store the in-flight exception if the latch is still empty.
  void record() noexcept {
    const util::MutexLock lock(mutex_);
    if (!failure_) failure_ = std::current_exception();
  }

  /// The first recorded failure (nullptr when every thread finished
  /// clean). Only meaningful after the recording threads joined, but
  /// locked regardless — the latch does not know its callers' joins.
  std::exception_ptr first() const {
    const util::MutexLock lock(mutex_);
    return failure_;
  }

 private:
  mutable util::Mutex mutex_;
  std::exception_ptr failure_ LIKWID_GUARDED_BY(mutex_);
};

/// Samples sitting in a task's OPEN windows: folded but not yet merged
/// into the series as a closed row. This is what a quarantine flush
/// discards, and therefore what the loss attribution counts.
std::uint64_t open_sample_count(const NodeTask& task) {
  std::uint64_t closed = 0;
  for (const SeriesPoint& p : task.folder.points()) closed += p.stats.count;
  return task.folder.samples_folded() - closed;
}

}  // namespace

int FleetConfig::resolved_threads() const {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Agent::Agent(AgentConfig config) : cfg_(std::move(config)) {
  LIKWID_REQUIRE(cfg_.num_machines > 0, "agent needs at least one machine");
  LIKWID_REQUIRE(cfg_.duration_seconds > 0, "duration must be positive");
  LIKWID_REQUIRE(cfg_.fleet.num_threads >= 0,
                 "worker thread count cannot be negative");
  LIKWID_REQUIRE(cfg_.fleet.supervision.max_restarts >= 0,
                 "max restarts cannot be negative");
  health_ = std::make_unique<HealthRegistry>(
      cfg_.num_machines, cfg_.fleet.supervision.quarantine_after,
      cfg_.fleet.supervision.recover_after);
  collectors_.reserve(static_cast<std::size_t>(cfg_.num_machines));
  for (int id = 0; id < cfg_.num_machines; ++id) {
    collectors_.push_back(std::make_unique<Collector>(id, cfg_.monitor));
  }
}

void Agent::step() {
  // Serial stepping invalidates a previous threaded run's folded
  // snapshot: rollups() falls back to aggregating the retention rings,
  // which include the new samples.
  folded_.clear();
  transport_ = FleetTransportStats{};
  const bool supervised = cfg_.monitor.fault_plan != nullptr;
  for (auto& collector : collectors_) {
    const int id = collector->machine_id();
    if (!supervised) {
      collector->step();
      continue;
    }
    if (health_->quarantined(id)) continue;
    try {
      collector->step();
      health_->record_sample_ok(id);
    } catch (const std::exception& e) {
      if (health_->record_fault(id, e.what()) == NodeHealth::kQuarantined) {
        LIKWID_WARN("fleet: machine " << id << " quarantined: " << e.what());
      }
    }
  }
  ++steps_;
}

void Agent::run() {
  const auto total = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(cfg_.duration_seconds / cfg_.monitor.interval_seconds -
                    1e-9)),
      1);
  if (plans_threaded()) {
    run_threaded(total, std::max(planned_workers(), 1));
  } else {
    run_serial(total);
  }
}

int Agent::planned_workers() const noexcept {
  return std::min(cfg_.fleet.resolved_threads(), cfg_.num_machines);
}

bool Agent::plans_threaded() const noexcept {
  return planned_workers() > 1 || cfg_.fleet.force_threaded;
}

void Agent::run_serial(std::uint64_t total_steps) {
  for (std::uint64_t s = total_steps; s > 0; --s) {
    step();
  }
}

void Agent::run_threaded(std::uint64_t total_steps, int workers) {
  const std::size_t machines = collectors_.size();
  const fault::FaultPlan* plan = cfg_.monitor.fault_plan.get();
  const SupervisionConfig& sup = cfg_.fleet.supervision;
  // With a fault plan, node-level step failures are expected hardware
  // behavior and flow into the health registry; without one a throwing
  // collector is a bug and crashes its worker (which supervision then
  // retries, surfacing the failure after max_restarts).
  const bool supervised = plan != nullptr;

  // One task per node: collector + partial folds + progress. The task is
  // the unit of stealing; whoever holds it has exclusive use of the node.
  std::vector<std::unique_ptr<NodeTask>> tasks;
  tasks.reserve(machines);
  for (std::size_t i = 0; i < machines; ++i) {
    tasks.push_back(std::make_unique<NodeTask>(
        static_cast<int>(i), collectors_[i].get(),
        cfg_.monitor.window_samples, total_steps));
  }

  // Per-worker deques, seeded with the same contiguous shards the old
  // fixed split used (ceil(machines / workers) nodes each), so an
  // unskewed fleet starts perfectly balanced and stealing only moves
  // work when the balance actually breaks.
  std::vector<TaskQueue> queues(static_cast<std::size_t>(workers));
  const std::size_t per =
      (machines + static_cast<std::size_t>(workers) - 1) /
      static_cast<std::size_t>(workers);
  for (std::size_t i = 0; i < machines; ++i) {
    queues[std::min(i / per, static_cast<std::size_t>(workers) - 1)].push(
        tasks[i].get());
  }

  std::atomic<std::size_t> remaining{machines};
  std::atomic<bool> terminal{false};
  FailureLatch failure;

  // Loss accounting. The task scheduler has exactly one loss mode — the
  // quarantine flush — and it is attributed to its machine: samples
  // missing from the folded windows bias the aggregates, and that bias
  // must never be silent. `lost_per_machine` / `steals_per_machine`
  // elements are only ever written by the worker exclusively holding that
  // machine's task, and read after the join.
  std::atomic<std::uint64_t> lost_quarantined{0};
  std::vector<std::uint64_t> lost_per_machine(machines, 0);
  std::vector<std::uint64_t> steals_per_machine(machines, 0);
  std::atomic<std::uint64_t> slices_folded{0};
  std::atomic<std::uint64_t> steals_total{0};
  std::vector<std::size_t> final_batch(static_cast<std::size_t>(workers),
                                       cfg_.fleet.batch_samples);

  // Steal from the busiest other queue — the victim whose owner is the
  // furthest behind — taking from the thief end (the work the owner
  // would reach last).
  const auto steal_task = [&](int self) -> NodeTask* {
    int victim = -1;
    std::size_t victim_size = 0;
    for (int q = 0; q < workers; ++q) {
      if (q == self) continue;
      const std::size_t size = queues[static_cast<std::size_t>(q)].size();
      if (size > victim_size) {
        victim_size = size;
        victim = q;
      }
    }
    if (victim < 0) return nullptr;
    return queues[static_cast<std::size_t>(victim)].steal();
  };

  // Run one slice of `task`: up to the tuner's slice length of
  // consecutive sampling steps, each folded immediately into the task's
  // folder — the no-transport hot path. Returns true when the task was
  // retired (finished or quarantined), false when it went back on the
  // worker's queue.
  const auto run_slice = [&](int w, BatchAutotuner& tuner, NodeTask* task) {
    const std::size_t slice_len = static_cast<std::size_t>(
        std::min<std::uint64_t>(tuner.current(),
                                task->total_steps - task->next_step));
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t attempts = 0;
    bool retire = false;
    for (std::size_t k = 0; k < slice_len; ++k) {
      if (terminal.load(std::memory_order_acquire)) break;
      const int id = task->machine;
      if (supervised) {
        try {
          task->collector->step();
        } catch (const std::exception& e) {
          // The attempt is consumed — exactly like the serial loop, a
          // faulted step leaves a hole in the stream, it does not stall
          // the schedule.
          ++task->next_step;
          ++attempts;
          if (health_->record_fault(id, e.what()) ==
              NodeHealth::kQuarantined) {
            // The node's open partial windows hold samples taken while
            // its device was already failing — discard, attributed.
            if (open_sample_count(*task) > 0) {
              lost_quarantined.fetch_add(1, std::memory_order_relaxed);
              ++lost_per_machine[static_cast<std::size_t>(id)];
              health_->record_lost_batch(id);
            }
            LIKWID_WARN("fleet: machine " << id
                                          << " quarantined: " << e.what());
            retire = true;
            break;
          }
          continue;
        }
        health_->record_sample_ok(id);
      } else {
        task->collector->step();
      }
      task->folder.add(task->collector->samples().back());
      ++task->next_step;
      ++attempts;
      task->samples_folded.fetch_add(1, std::memory_order_relaxed);
      task->rows_emitted.store(task->folder.points().size(),
                               std::memory_order_relaxed);
    }
    // Injected slow fold consumer: the fault layer's scheduling-pressure
    // knob. Slowing every merge stretches the run exactly like an
    // overloaded real fold path — but, unlike the old transport rings,
    // nothing backs up and nothing can be lost to it.
    if (plan != nullptr && plan->slow_consumer_us() > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(plan->slow_consumer_us()));
    }
    slices_folded.fetch_add(1, std::memory_order_relaxed);
    tuner.observe(attempts,
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
    if (retire) {
      remaining.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
    if (task->done()) {
      // Merge the trailing partial windows at close — the only moment a
      // task's open folds ever become series rows.
      task->folder.finish();
      task->rows_emitted.store(task->folder.points().size(),
                               std::memory_order_relaxed);
      remaining.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
    queues[static_cast<std::size_t>(w)].push(task);
    return false;
  };

  // Worker progress lives OUTSIDE the restart loop so a restarted body
  // resumes where the crash interrupted — the crash schedule is consumed
  // exactly once and the in-flight task is re-queued, never lost.
  struct WorkerState {
    std::uint64_t acquisitions = 0;  ///< slices acquired so far
    std::size_t crash_idx = 0;       ///< injected crashes consumed
    NodeTask* in_flight = nullptr;   ///< task held when a crash hit
    BatchAutotuner tuner;
    explicit WorkerState(std::size_t configured_batch)
        : tuner(configured_batch) {}
  };

  const auto worker_body = [&](int w, WorkerState& st,
                               const std::vector<std::uint64_t>& crashes) {
    while (!terminal.load(std::memory_order_acquire)) {
      // Injected crashes fire at acquisition points — never with a task
      // in flight — keyed on this worker's acquisition count. Consume the
      // schedule entry BEFORE throwing: the restarted body must resume
      // past this crash, not re-crash forever.
      if (st.crash_idx < crashes.size() &&
          st.acquisitions >= crashes[st.crash_idx]) {
        ++st.crash_idx;
        throw_error(ErrorCode::kInternal,
                    "injected worker crash after " +
                        std::to_string(st.acquisitions) + " slices");
      }
      NodeTask* task = queues[static_cast<std::size_t>(w)].pop();
      if (task == nullptr) {
        task = steal_task(w);
        if (task != nullptr) {
          ++task->steals;
          steals_total.fetch_add(1, std::memory_order_relaxed);
          ++steals_per_machine[static_cast<std::size_t>(task->machine)];
        }
      }
      if (task == nullptr) {
        if (remaining.load(std::memory_order_acquire) == 0) break;
        std::this_thread::yield();
        continue;
      }
      ++st.acquisitions;
      st.in_flight = task;
      run_slice(w, st.tuner, task);
      st.in_flight = nullptr;
    }
    // Exit drain: crashes the schedule still owes this worker fire now,
    // so a chaos run absorbs a deterministic restart count no matter how
    // the stealing race distributed the slices.
    if (!terminal.load(std::memory_order_acquire) &&
        st.crash_idx < crashes.size()) {
      ++st.crash_idx;
      throw_error(ErrorCode::kInternal, "injected worker crash at exit");
    }
  };

  // In-place supervision: the thread survives its body's exceptions and
  // re-enters it (state preserved, in-flight task re-queued) after capped
  // exponential backoff with a deterministic plan-drawn jitter. Out of
  // restarts, the failure is terminal and latched.
  const auto worker_thread = [&](int w) {
    WorkerState st(cfg_.fleet.batch_samples);
    const std::vector<std::uint64_t> crashes =
        plan != nullptr
            ? plan->crash_steps(w, workers, total_steps)
            : std::vector<std::uint64_t>{};
    for (int restarts = 0;;) {
      try {
        worker_body(w, st, crashes);
        break;
      } catch (...) {
        if (st.in_flight != nullptr) {
          // The crash interrupted a slice: the task's progress counters
          // are consistent (each step updates them atomically with its
          // fold), so re-queueing resumes the node exactly where the
          // crash left it.
          queues[static_cast<std::size_t>(w)].push(st.in_flight);
          st.in_flight = nullptr;
        }
        if (restarts >= sup.max_restarts) {
          failure.record();
          terminal.store(true, std::memory_order_release);
          return;
        }
        ++restarts;
        health_->record_worker_restart();
        double delay_ms =
            std::min(sup.backoff_initial_ms *
                         std::pow(2.0, static_cast<double>(restarts - 1)),
                     sup.backoff_max_ms);
        // Jitter by 0.5x..1.5x to decorrelate simultaneous restarts; the
        // draw comes from the plan so chaos runs stay reproducible.
        if (plan != nullptr) {
          delay_ms *= 0.5 + plan->backoff_jitter(w, restarts);
        }
        LIKWID_WARN("fleet: worker " << w << " crashed; restart " << restarts
                                     << "/" << sup.max_restarts
                                     << " after " << delay_ms << " ms");
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
    }
    final_batch[static_cast<std::size_t>(w)] = st.tuner.current();
  };

  folded_.clear();
  // Lightweight progress thread (only when a callback is installed): it
  // sums the tasks' monotonic fold counters — the workers never stop to
  // report. One final report fires before the thread exits, so every
  // threaded run reports at least once.
  std::atomic<bool> pool_done{false};
  const auto t0 = std::chrono::steady_clock::now();
  std::thread progress_thread;
  if (progress_) {
    progress_thread = std::thread([&]() {
      const auto report = [&]() {
        FleetProgress p;
        p.elapsed_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        for (const auto& task : tasks) {
          p.samples_folded +=
              task->samples_folded.load(std::memory_order_acquire);
          p.rows_emitted +=
              task->rows_emitted.load(std::memory_order_acquire);
        }
        progress_(p);
      };
      const auto tick = std::chrono::duration<double>(
          std::min(progress_interval_seconds_, 0.05));
      auto last = t0;
      while (!pool_done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(tick);
        const auto now = std::chrono::steady_clock::now();
        if (std::chrono::duration<double>(now - last).count() >=
            progress_interval_seconds_) {
          last = now;
          report();
        }
      }
      report();
    });
  }

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back(worker_thread, w);
  }
  for (std::thread& t : pool) t.join();
  pool_done.store(true, std::memory_order_release);
  if (progress_thread.joinable()) progress_thread.join();

  // Harvest the scheduler accounting before the tasks go away. The
  // reported batch is the configured value, or — when autotuning — the
  // median of the workers' final slice lengths.
  transport_ = FleetTransportStats{};
  transport_.slices_folded = slices_folded.load(std::memory_order_relaxed);
  transport_.steals = steals_total.load(std::memory_order_relaxed);
  transport_.lost_quarantined =
      lost_quarantined.load(std::memory_order_relaxed);
  transport_.batches_lost = transport_.lost_quarantined;
  transport_.steals_per_machine = std::move(steals_per_machine);
  transport_.lost_per_machine = std::move(lost_per_machine);
  transport_.batch_autotuned = cfg_.fleet.batch_samples == 0;
  if (transport_.batch_autotuned) {
    std::nth_element(final_batch.begin(),
                     final_batch.begin() + final_batch.size() / 2,
                     final_batch.end());
    transport_.batch_steps = final_batch[final_batch.size() / 2];
  } else {
    transport_.batch_steps = cfg_.fleet.batch_samples;
  }
  if (const std::exception_ptr first = failure.first()) {
    // A failed run must not present partially folded windows as valid
    // rollups; fall back to the retention rings.
    folded_.clear();
    std::rethrow_exception(first);
  }
  folded_.assign(machines, {});
  for (std::size_t i = 0; i < machines; ++i) {
    folded_[i] = tasks[i]->folder.take_points();
  }
  steps_ += total_steps;
}

std::vector<SeriesPoint> Agent::rollups() const {
  std::vector<SeriesPoint> out;
  if (!folded_.empty()) {
    for (std::size_t i = 0; i < folded_.size(); ++i) {
      if (health_->quarantined(static_cast<int>(i))) continue;
      out.insert(out.end(), folded_[i].begin(), folded_[i].end());
    }
    return out;
  }
  const Aggregator aggregator(cfg_.monitor.window_samples);
  for (const auto& collector : collectors_) {
    if (health_->quarantined(collector->machine_id())) continue;
    auto points =
        aggregator.rollup(collector->machine_id(), collector->samples());
    out.insert(out.end(), std::make_move_iterator(points.begin()),
               std::make_move_iterator(points.end()));
  }
  return out;
}

api::ResultTable Agent::health_report() const {
  api::ResultTable table;
  table.group = "NODE_HEALTH";
  table.has_metrics = true;
  table.seconds = cfg_.duration_seconds;
  api::ResultTable::MetricRow state{
      "Health state (0=healthy 1=degraded 2=quarantined)", {}};
  api::ResultTable::MetricRow faults{"Step faults", {}};
  api::ResultTable::MetricRow ok{"Samples ok", {}};
  api::ResultTable::MetricRow lost{"Batches lost", {}};
  api::ResultTable::MetricRow steals{"Task steals", {}};
  for (const NodeHealthSnapshot& s : health_->snapshots()) {
    table.cpus.push_back(s.machine_id);
    state.values.push_back(static_cast<double>(static_cast<int>(s.state)));
    faults.values.push_back(static_cast<double>(s.step_faults));
    ok.values.push_back(static_cast<double>(s.samples_ok));
    lost.values.push_back(static_cast<double>(s.batches_lost));
    const auto id = static_cast<std::size_t>(s.machine_id);
    steals.values.push_back(
        id < transport_.steals_per_machine.size()
            ? static_cast<double>(transport_.steals_per_machine[id])
            : 0.0);
  }
  table.metrics = {std::move(state), std::move(faults), std::move(ok),
                   std::move(lost), std::move(steals)};
  return table;
}

void Agent::set_progress(std::function<void(const FleetProgress&)> callback,
                         double interval_seconds) {
  LIKWID_REQUIRE(interval_seconds > 0,
                 "progress interval must be positive");
  progress_ = std::move(callback);
  progress_interval_seconds_ = interval_seconds;
}

}  // namespace likwid::monitor
