#include "monitor/agent.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <utility>

#include "util/status.hpp"

namespace likwid::monitor {

Agent::Agent(AgentConfig config) : cfg_(std::move(config)) {
  LIKWID_REQUIRE(cfg_.num_machines > 0, "agent needs at least one machine");
  LIKWID_REQUIRE(cfg_.duration_seconds > 0, "duration must be positive");
  collectors_.reserve(static_cast<std::size_t>(cfg_.num_machines));
  for (int id = 0; id < cfg_.num_machines; ++id) {
    collectors_.push_back(std::make_unique<Collector>(id, cfg_.monitor));
  }
}

void Agent::step() {
  for (auto& collector : collectors_) {
    collector->step();
  }
  ++steps_;
}

void Agent::run() {
  const auto total = static_cast<std::uint64_t>(
      std::ceil(cfg_.duration_seconds / cfg_.monitor.interval_seconds -
                1e-9));
  for (std::uint64_t s = std::max<std::uint64_t>(total, 1); s > 0; --s) {
    step();
  }
}

std::vector<SeriesPoint> Agent::rollups() const {
  const Aggregator aggregator(cfg_.monitor.window_samples);
  std::vector<SeriesPoint> out;
  for (const auto& collector : collectors_) {
    auto points =
        aggregator.rollup(collector->machine_id(), collector->samples());
    out.insert(out.end(), std::make_move_iterator(points.begin()),
               std::make_move_iterator(points.end()));
  }
  return out;
}

}  // namespace likwid::monitor
