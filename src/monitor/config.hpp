// config.hpp — configuration and the sample record of the monitoring
// subsystem.
//
// The paper's likwid-perfctr measures one run and exits; likwid-agent
// (after the LIKWID Monitoring Stack, Röhl et al. 2017) turns the same
// counting core into a continuous daemon: every `interval_seconds` each
// monitored machine closes a measurement interval, reduces the derived
// metrics to one node-level value per metric, and retains the sample in a
// bounded ring.
//
// Samples are interned: a Sample carries one dense vector of node-level
// values plus a shared MetricSchema describing which metric id each slot
// holds and how it reduces across cpus. The schema is built once per
// event group at collector setup; the per-interval path never touches a
// string or a map node.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/name_table.hpp"
#include "monitor/ring_buffer.hpp"

namespace likwid::fault {
class FaultPlan;
}  // namespace likwid::fault

namespace likwid::monitor {

/// Per-machine monitoring configuration.
struct MonitorConfig {
  /// Simulated node type (hwsim preset key, see presets::all_presets()).
  std::string machine_preset = "westmere-ep";
  /// BIOS/OS processor numbering override ("smt-last", "smt-adjacent",
  /// "socket-rr"); empty keeps the preset's default.
  std::string os_enumeration;
  /// Performance groups to measure. More than one enables interval-grained
  /// multiplexing when `rotate_groups` is set.
  std::vector<std::string> groups = {"MEM"};
  /// Sampling cadence in simulated seconds.
  double interval_seconds = 0.1;
  /// Rotate to the next event set after each sample (multiplexing); when
  /// false, only the first group is ever measured.
  bool rotate_groups = true;
  /// Retained samples per machine; older ones are overwritten.
  std::size_t ring_capacity = 4096;
  /// Samples per aggregation window (min/avg/max/p95 rollups).
  int window_samples = 5;
  /// Fraction of each interval the machine's synthetic load keeps it busy;
  /// the rest of the interval the node idles, like a real host between
  /// job phases. 0 means fully idle — the node only samples (the bare
  /// monitoring path, which the allocation regression test measures).
  double target_utilization = 0.6;
  /// Base RNG seed; collectors offset it by their machine id so a fleet is
  /// deterministic yet not in lockstep.
  std::uint64_t seed = 42;
  /// Simulated per-sample counter-access latency in microseconds: each
  /// sampling step blocks this long before closing its interval, the way
  /// a real node agent blocks on /dev/msr, sysfs or a management network
  /// round trip. The sleep burns wall time only — simulated time and the
  /// sample stream are untouched, so latency never perturbs rollups. This
  /// is the regime the fleet scheduler exists for: overlapping many
  /// blocked acquisitions is what worker threads buy (the paper's
  /// negligible-overhead requirement is about exactly this path). 0 (the
  /// default) keeps steps latency-free.
  double device_latency_us = 0;
  /// Linear per-node latency skew: node `i` blocks
  /// `device_latency_us * (1 + device_latency_skew * i)` per step.
  /// Skewed fleets are how tests and the bench force work stealing —
  /// workers owning cheap nodes drain their queues first and steal from
  /// the slow shard. 0 keeps the fleet uniform.
  double device_latency_skew = 0;
  /// Optional deterministic fault plan (see fault/plan.hpp). When set,
  /// collectors install the plan's MSR fault devices, validate intervals
  /// for stale/saturated counters, and the agent supervises instead of
  /// failing fast. Null (the default) injects nothing and keeps the
  /// fault-free paths byte-identical to before.
  std::shared_ptr<const fault::FaultPlan> fault_plan;
};

/// Supervision policy of the threaded fleet scheduler: what the agent does
/// when a worker thread dies instead of latching the first failure.
struct SupervisionConfig {
  /// Restarts allowed per worker before the failure becomes terminal for
  /// the run. 0 restores the old fail-fast behavior.
  int max_restarts = 3;
  /// Exponential backoff before the n-th restart of a worker:
  /// initial * 2^n, capped at `backoff_max_ms`, jittered by the fault
  /// plan's deterministic draw (or unjittered without a plan).
  double backoff_initial_ms = 1.0;
  double backoff_max_ms = 100.0;
  /// Consecutive faulted sampling steps that quarantine a node.
  int quarantine_after = 2;
  /// Consecutive clean samples that return a degraded node to healthy.
  int recover_after = 3;
};

/// Fleet-level scheduling configuration: how many worker threads run the
/// work-stealing task scheduler and how long its task slices are.
struct FleetConfig {
  /// Worker threads stepping the fleet. 1 keeps the serial in-thread loop
  /// (deterministic legacy path, no scheduler); N > 1 runs the
  /// work-stealing task scheduler over N workers (monitor/scheduler.hpp):
  /// node tasks start sharded over per-worker deques, idle workers steal
  /// from the busiest queue, and every worker folds the samples it
  /// produces locally — there is no aggregation thread.
  /// 0 picks std::thread::hardware_concurrency().
  int num_threads = 1;
  /// Sampling steps a worker runs per task slice before the node's task
  /// goes back on its queue — the granularity of stealing and of the
  /// queue round trip. 0 (the default) autotunes the slice length from
  /// the observed per-step fold latency (monitor::BatchAutotuner); the
  /// chosen value is surfaced in FleetTransportStats::batch_steps and the
  /// likwid-agent fleet summary, so the former silent magic constant is
  /// now recorded with every run.
  std::size_t batch_samples = 0;
  /// Run the threaded scheduler even when only one worker resolves.
  /// The default keeps single-worker runs on the plain serial loop;
  /// forcing is how the scaling bench measures the scheduler's own
  /// overhead at 1 worker.
  bool force_threaded = false;
  /// Worker-restart and node-quarantine policy.
  SupervisionConfig supervision;

  /// Worker count after resolving 0 = hardware concurrency.
  int resolved_threads() const;
};

/// How a per-cpu metric reduces to one node-level value (see
/// reduce_kind_of() for the naming rules).
enum class ReduceKind {
  kSum,  ///< rates ("... MBytes/s") and volumes ("[GBytes]")
  kMax,  ///< runtimes: the slowest cpu
  kAvg,  ///< ratios (CPI, miss ratios, ...)
};

/// Classify a metric by its display name.
ReduceKind reduce_kind_of(std::string_view metric_name);

/// Apply a reduction over per-cpu values; 0 for an empty span.
double reduce_values(ReduceKind kind, std::span<const double> values);

/// The shape of one event group's samples: which metric each value slot
/// holds, how it reduces, and the name-sorted emission order the rollup
/// writers use. Built once per group, shared by every Sample of it.
struct MetricSchema {
  core::NameId group_id = core::kInvalidNameId;
  std::vector<core::NameId> metric_ids;  ///< slot -> metric, group order
  std::vector<ReduceKind> reduce;        ///< per slot
  /// Slot indices sorted by metric name — the emission order of the old
  /// string-keyed rollup maps, preserved so exported series are unchanged.
  std::vector<std::size_t> output_order;

  static std::shared_ptr<const MetricSchema> create(
      std::string_view group, const std::vector<core::NameId>& metric_ids);
};

/// One closed measurement interval of one machine, reduced to node level.
struct Sample {
  std::uint64_t sequence = 0;  ///< step index of the collector
  double t_start = 0;          ///< simulated time the interval opened
  double t_end = 0;            ///< simulated time the interval closed
  /// Shape of `values` (shared; one per event group of the collector).
  std::shared_ptr<const MetricSchema> schema;
  /// Node-level metric values, aligned with schema->metric_ids.
  std::vector<double> values;

  /// Display name of the group live during the interval.
  const std::string& group() const {
    return core::resolve_name(schema->group_id);
  }

  /// Value of a metric by display name; throws Error(kNotFound) when this
  /// sample's group does not define it (boundary/test convenience).
  double value_of(std::string_view metric) const;

  double seconds() const { return t_end - t_start; }
};

using SampleRing = RingBuffer<Sample>;

}  // namespace likwid::monitor
