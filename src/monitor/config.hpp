// config.hpp — configuration and the sample record of the monitoring
// subsystem.
//
// The paper's likwid-perfctr measures one run and exits; likwid-agent
// (after the LIKWID Monitoring Stack, Röhl et al. 2017) turns the same
// counting core into a continuous daemon: every `interval_seconds` each
// monitored machine closes a measurement interval, reduces the derived
// metrics to one node-level value per metric, and retains the sample in a
// bounded ring.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "monitor/ring_buffer.hpp"

namespace likwid::monitor {

/// Per-machine monitoring configuration.
struct MonitorConfig {
  /// Simulated node type (hwsim preset key, see presets::all_presets()).
  std::string machine_preset = "westmere-ep";
  /// BIOS/OS processor numbering override ("smt-last", "smt-adjacent",
  /// "socket-rr"); empty keeps the preset's default.
  std::string os_enumeration;
  /// Performance groups to measure. More than one enables interval-grained
  /// multiplexing when `rotate_groups` is set.
  std::vector<std::string> groups = {"MEM"};
  /// Sampling cadence in simulated seconds.
  double interval_seconds = 0.1;
  /// Rotate to the next event set after each sample (multiplexing); when
  /// false, only the first group is ever measured.
  bool rotate_groups = true;
  /// Retained samples per machine; older ones are overwritten.
  std::size_t ring_capacity = 4096;
  /// Samples per aggregation window (min/avg/max/p95 rollups).
  int window_samples = 5;
  /// Fraction of each interval the machine's synthetic load keeps it busy;
  /// the rest of the interval the node idles, like a real host between
  /// job phases.
  double target_utilization = 0.6;
  /// Base RNG seed; collectors offset it by their machine id so a fleet is
  /// deterministic yet not in lockstep.
  std::uint64_t seed = 42;
};

/// One closed measurement interval of one machine, reduced to node level.
struct Sample {
  std::uint64_t sequence = 0;  ///< step index of the collector
  double t_start = 0;          ///< simulated time the interval opened
  double t_end = 0;            ///< simulated time the interval closed
  std::string group;           ///< event group live during the interval
  /// Derived metric name -> node-level value (see node_reduce()).
  std::map<std::string, double> metrics;

  double seconds() const { return t_end - t_start; }
};

using SampleRing = RingBuffer<Sample>;

}  // namespace likwid::monitor
