// synthetic.hpp — a family of parameterizable synthetic kernels that
// exercise every preconfigured event group of likwid-perfctr.
//
// STREAM and Jacobi cover the paper's case studies (bandwidth- and
// cache-bound double-precision code). The tools, however, ship eleven
// event groups (FLOPS_DP/SP, L2, L3, MEM, CACHE, L2CACHE, L3CACHE, DATA,
// BRANCH, TLB), and several of them measure behaviour no stream kernel
// produces: branch mispredictions, TLB thrashing, store-light reductions,
// compute-bound SSE throughput. SyntheticKernel closes that gap with a
// declarative instruction mix plus a cyclic-sweep access pattern whose
// steady-state cache behaviour is derived from the *measured machine's*
// cache and TLB capacities — so a working set that overflows L2 on one
// preset may fit on another, and the group metrics respond accordingly.
//
// The factories at the bottom return ready-made descriptors for classic
// kernels (copy, daxpy, dot, blocked dgemm, a branchy reduction, a TLB
// thrasher, a cache ladder probe).
#pragma once

#include <cstdint>
#include <string>

#include "workloads/workload.hpp"

namespace likwid::workloads {

/// Per-iteration instruction mix (all rates may be fractional: they are
/// event expectations per kernel iteration, not literal instruction slots).
struct InstructionMix {
  double cycles = 1.0;         ///< core-bound cycles per iteration
  double instructions = 1.0;   ///< retired instructions per iteration
  double packed_double = 0;    ///< packed-double SSE computational ops
  double scalar_double = 0;
  double packed_single = 0;
  double scalar_single = 0;
  double loads = 0;            ///< retired load instructions
  double stores = 0;           ///< retired store instructions
  double branches = 0;         ///< retired branch instructions
  double mispredict_ratio = 0; ///< mispredicted fraction of branches
};

/// Cyclic sequential sweep over a private per-worker working set. The
/// steady-state rule is the classic LRU result: a cyclic sweep whose
/// resident footprint fits the (shared) cache level produces no misses at
/// that level after warm-up; one that overflows it misses on every line,
/// every sweep.
struct AccessPattern {
  std::uint64_t working_set_bytes = 0;  ///< per worker; 0 = register-only
  std::uint64_t stride_bytes = 8;       ///< distance between accesses
  double store_fraction = 0;            ///< fraction of touched lines written
  bool nontemporal_stores = false;      ///< stores bypass the hierarchy
};

struct SyntheticConfig {
  std::string name = "synthetic";
  /// Kernel iterations per sweep *per worker* (the kernels scale weakly:
  /// every worker owns a private working set and its own iteration count).
  double iterations_per_sweep = 0;
  int sweeps = 1;
  InstructionMix mix;
  AccessPattern access;
};

/// Steady-state per-sweep traffic of one worker, as derived by the kernel
/// (exposed so tests can assert against the same numbers the PMU sees).
struct SweepTraffic {
  double lines = 0;        ///< distinct cache lines touched per sweep
  double store_lines = 0;  ///< lines also written per sweep
  double pages = 0;        ///< distinct pages touched per sweep
  bool misses_l1 = false;  ///< working set overflows L1 (per instance)
  bool misses_l2 = false;
  bool misses_llc = false; ///< overflows the last-level cache
  double dtlb_misses = 0;  ///< per sweep
};

class SyntheticKernel final : public Workload {
 public:
  explicit SyntheticKernel(SyntheticConfig config);

  std::string name() const override { return config_.name; }

  double run_slice(ossim::SimKernel& kernel, const Placement& p,
                   double fraction) override;

  const SyntheticConfig& config() const { return config_; }

  /// The steady-state traffic `worker` (index into `p.cpus`) generates per
  /// sweep under placement `p` on `machine` — capacity sharing included.
  SweepTraffic sweep_traffic(const hwsim::SimMachine& machine,
                             const Placement& p, int worker) const;

 private:
  SyntheticConfig config_;
};

// --- ready-made kernels ---------------------------------------------------

/// y[i] = x[i]: one load, one (optionally nontemporal) store per element.
/// Exercises DATA (ratio 1) and the NT-store traffic saving of MEM.
SyntheticConfig copy_kernel(std::size_t elements, int sweeps,
                            bool nontemporal = false);

/// y[i] += a*x[i]: two loads, one store, two double flops per element
/// (vectorized). Exercises DATA (ratio 2), FLOPS_DP and the bandwidth
/// groups.
SyntheticConfig daxpy_kernel(std::size_t elements, int sweeps);

/// a[i] = b[i] + s*c[i]: the STREAM triad as a working-set-aware synthetic
/// kernel (the instruction mix of workloads::StreamTriad under the icc
/// profile). Three streams; the a[] third of the lines is written with
/// write-allocate. Backs likwid-bench's stream_triad.
SyntheticConfig triad_kernel(std::size_t elements, int sweeps);

/// s += x[i]*y[i]: two loads, no stores, two double flops per element.
/// The store-free extreme of the DATA group.
SyntheticConfig dot_kernel(std::size_t elements, int sweeps);

/// Single-precision a[i] = b[i]*c[i] + a[i] (vectorized): the FLOPS_SP
/// counterpart of daxpy.
SyntheticConfig saxpy_kernel(std::size_t elements, int sweeps);

/// Cache-blocked matrix multiply, n x n with b x b blocks held in cache:
/// compute-bound packed-double SSE at ~4 flops per cycle. Exercises
/// FLOPS_DP at high MFlops/s with negligible memory traffic.
SyntheticConfig dgemm_kernel(std::size_t n, std::size_t block);

/// Data-dependent branches over `elements` values with the given
/// misprediction ratio (0.5 = random data, ~0 = sorted data). Exercises
/// BRANCH; the cycle cost includes the misprediction penalty.
SyntheticConfig branchy_kernel(std::size_t elements, int sweeps,
                               double mispredict_ratio);

/// One 8-byte load per page over `pages` pages (stride = page size):
/// maximal TLB pressure with minimal cache traffic. Exercises TLB.
SyntheticConfig tlb_thrash_kernel(std::size_t pages, int sweeps,
                                  std::uint64_t page_size = 4096);

/// Load-only sweep over a working set of the given size, one 8-byte load
/// per line. Sweeping the size across the cache capacities walks the
/// CACHE / L2CACHE / L3CACHE / MEM groups through their regimes.
SyntheticConfig cache_ladder_kernel(std::uint64_t working_set_bytes,
                                    int sweeps);

}  // namespace likwid::workloads
