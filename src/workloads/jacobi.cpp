#include "workloads/jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "perfmodel/exec_model.hpp"
#include "util/status.hpp"

namespace likwid::workloads {

using cachesim::AccessKind;
using hwsim::EventId;
using hwsim::EventVector;

namespace {
constexpr std::uint64_t kOldBase = 0x100000000ull;  // 4 GiB: grid "old"
constexpr std::uint64_t kAlign = 1ull << 30;
}  // namespace

JacobiStencil::JacobiStencil(JacobiConfig config) : config_(config) {
  LIKWID_REQUIRE(config_.n >= 4, "grid too small");
  LIKWID_REQUIRE(config_.sweeps >= 1, "need at least one sweep");
  LIKWID_REQUIRE(config_.ring_planes >= 2, "ring needs at least two planes");
  old_base_ = kOldBase;
  const std::uint64_t grid_bytes = static_cast<std::uint64_t>(config_.n) *
                                   config_.n * config_.n * 8;
  new_base_ = old_base_ + ((grid_bytes + kAlign - 1) / kAlign) * kAlign;
}

std::string JacobiStencil::name() const {
  switch (config_.variant) {
    case JacobiVariant::kThreaded: return "jacobi-threaded";
    case JacobiVariant::kThreadedNT: return "jacobi-threaded-nt";
    case JacobiVariant::kWavefront: return "jacobi-wavefront";
  }
  return "jacobi";
}

double JacobiStencil::total_updates() const {
  return static_cast<double>(config_.n) * config_.n * config_.n *
         config_.sweeps;
}

double JacobiStencil::mlups(double seconds) const {
  return total_updates() / seconds / 1e6;
}

void JacobiStencil::sweep_plane(ossim::SimKernel& kernel, int cpu,
                                std::uint64_t src_base, std::uint64_t dst_base,
                                int src_plane, int dst_plane,
                                bool nontemporal) {
  const int n = config_.n;
  const std::uint64_t row_bytes = static_cast<std::uint64_t>(n) * 8;
  const std::uint64_t plane_bytes = row_bytes * static_cast<std::uint64_t>(n);
  auto& caches = kernel.caches();

  const auto row_addr = [&](std::uint64_t base, int plane, int j) {
    return base + static_cast<std::uint64_t>(plane) * plane_bytes +
           static_cast<std::uint64_t>(j) * row_bytes;
  };
  const int pm = std::max(src_plane - 1, 0);
  const int pp = std::min(src_plane + 1, n - 1);

  for (int j = 0; j < n; ++j) {
    const int jm = std::max(j - 1, 0);
    const int jp = std::min(j + 1, n - 1);
    // 7-point stencil: rows (p,j-1), (p,j), (p,j+1), (p-1,j), (p+1,j).
    caches.access(cpu, row_addr(src_base, src_plane, jm), row_bytes,
                  AccessKind::kLoad);
    caches.access(cpu, row_addr(src_base, src_plane, j), row_bytes,
                  AccessKind::kLoad);
    caches.access(cpu, row_addr(src_base, src_plane, jp), row_bytes,
                  AccessKind::kLoad);
    caches.access(cpu, row_addr(src_base, pm, j), row_bytes, AccessKind::kLoad);
    caches.access(cpu, row_addr(src_base, pp, j), row_bytes, AccessKind::kLoad);
    caches.access(cpu, row_addr(dst_base, dst_plane, j), row_bytes,
                  nontemporal ? AccessKind::kStoreNonTemporal
                              : AccessKind::kStore);
  }
}

void JacobiStencil::simulate_threaded_sweep(ossim::SimKernel& kernel,
                                            const Placement& p,
                                            bool nontemporal) {
  const int n = config_.n;
  const int workers = p.num_workers();
  for (int w = 0; w < workers; ++w) {
    const int k0 = static_cast<int>(static_cast<long>(n) * w / workers);
    const int k1 = static_cast<int>(static_cast<long>(n) * (w + 1) / workers);
    for (int k = k0; k < k1; ++k) {
      sweep_plane(kernel, p.cpus[static_cast<std::size_t>(w)], old_base_,
                  new_base_, k, k, nontemporal);
    }
  }
  std::swap(old_base_, new_base_);
}

void JacobiStencil::simulate_wavefront_pass(ossim::SimKernel& kernel,
                                            const Placement& p) {
  const int n = config_.n;
  const int depth = p.num_workers();
  // The real wavefront kernel blocks in j so its inter-stage buffers stay
  // resident in the shared cache at any problem size: size the per-plane
  // ring slots to a j-block that keeps the total ring working set within
  // a fraction of the L3.
  const auto& spec = kernel.machine().spec();
  int block_rows = n;
  if (spec.has_data_cache(3)) {
    const double budget = 0.4 * static_cast<double>(
                                    spec.data_cache(3).size_bytes);
    const double per_row = static_cast<double>(depth) * config_.ring_planes *
                           n * 8.0;
    block_rows = std::max(8, std::min(n, static_cast<int>(budget / per_row)));
  }
  const std::uint64_t plane_bytes =
      static_cast<std::uint64_t>(block_rows) * n * 8;
  // Ring buffers between consecutive stages live above the two grids.
  const std::uint64_t ring_base = new_base_ + 2 * kAlign;
  const auto ring_of_stage = [&](int s) {
    return ring_base + static_cast<std::uint64_t>(s) * kAlign;
  };
  const int ring = config_.ring_planes;

  const std::uint64_t row_bytes = static_cast<std::uint64_t>(n) * 8;
  const std::uint64_t grid_plane_bytes =
      row_bytes * static_cast<std::uint64_t>(n);
  auto& caches = kernel.caches();
  // Full-size grid rows vs. j-blocked, reused ring rows.
  const auto grid_row = [&](std::uint64_t base, int pl, int j) {
    return base + static_cast<std::uint64_t>(pl) * grid_plane_bytes +
           static_cast<std::uint64_t>(j) * row_bytes;
  };
  const auto ring_row = [&](int stage, int slot, int j_in_block) {
    return ring_of_stage(stage) +
           static_cast<std::uint64_t>(slot) * plane_bytes +
           static_cast<std::uint64_t>(j_in_block) * row_bytes;
  };

  // j-block-major wave, as in the real kernel: for each j block, a plane
  // wave runs through all pipeline stages; ring slots hold one j block of
  // one plane, so the inter-stage working set stays cache resident at any
  // problem size while every handoff still moves the full data.
  const int last_step = n - 1 + 2 * (depth - 1);
  for (int jb = 0; jb < n; jb += block_rows) {
    const int jb_end = std::min(jb + block_rows, n);
    for (int step = 0; step <= last_step; ++step) {
      for (int s = 0; s < depth; ++s) {
        const int plane = step - 2 * s;
        if (plane < 0 || plane >= n) continue;
        const int cpu = p.cpus[static_cast<std::size_t>(s)];
        const bool first = s == 0;
        const bool last = s == depth - 1;
        const int slot = plane % ring;
        const int slot_m = (slot + ring - 1) % ring;
        const int slot_p = (slot + 1) % ring;
        const int pm = std::max(plane - 1, 0);
        const int pp = std::min(plane + 1, n - 1);
        for (int j = jb; j < jb_end; ++j) {
          const int jm = std::max(j - 1, jb);
          const int jp = std::min(j + 1, jb_end - 1);
          if (first) {
            // Stage 0 reads the full-size old grid from memory.
            caches.access(cpu, grid_row(old_base_, plane, jm), row_bytes,
                          AccessKind::kLoad);
            caches.access(cpu, grid_row(old_base_, plane, j), row_bytes,
                          AccessKind::kLoad);
            caches.access(cpu, grid_row(old_base_, plane, jp), row_bytes,
                          AccessKind::kLoad);
            caches.access(cpu, grid_row(old_base_, pm, j), row_bytes,
                          AccessKind::kLoad);
            caches.access(cpu, grid_row(old_base_, pp, j), row_bytes,
                          AccessKind::kLoad);
          } else {
            // Later stages read the previous stage's ring block.
            caches.access(cpu, ring_row(s - 1, slot, jm - jb), row_bytes,
                          AccessKind::kLoad);
            caches.access(cpu, ring_row(s - 1, slot, j - jb), row_bytes,
                          AccessKind::kLoad);
            caches.access(cpu, ring_row(s - 1, slot, jp - jb), row_bytes,
                          AccessKind::kLoad);
            caches.access(cpu, ring_row(s - 1, slot_m, j - jb), row_bytes,
                          AccessKind::kLoad);
            caches.access(cpu, ring_row(s - 1, slot_p, j - jb), row_bytes,
                          AccessKind::kLoad);
          }
          if (last) {
            caches.access(cpu, grid_row(new_base_, plane, j), row_bytes,
                          AccessKind::kStore);
          } else {
            caches.access(cpu, ring_row(s, slot, j - jb), row_bytes,
                          AccessKind::kStore);
          }
        }
      }
    }
  }
  std::swap(old_base_, new_base_);
}

double JacobiStencil::run_slice(ossim::SimKernel& kernel, const Placement& p,
                                double fraction) {
  const int workers = p.num_workers();
  LIKWID_REQUIRE(workers >= 1, "jacobi needs at least one worker");
  {
    std::set<int> distinct(p.cpus.begin(), p.cpus.end());
    LIKWID_REQUIRE(static_cast<int>(distinct.size()) == workers,
                   "jacobi workers must run on distinct cpus");
  }
  const bool wavefront = config_.variant == JacobiVariant::kWavefront;
  const int step_unit = wavefront ? workers : 1;
  LIKWID_REQUIRE(!wavefront || config_.sweeps % workers == 0,
                 "wavefront sweeps must be a multiple of the pipeline depth");

  // Translate the fraction into whole sweeps (wavefront: whole passes).
  const int total_units = config_.sweeps / step_unit;
  int units = std::max(1, static_cast<int>(std::lround(total_units * fraction)));
  const int remaining = total_units - executed_sweeps_ / step_unit;
  units = std::min(units, std::max(remaining, 1));

  auto& machine = kernel.machine();
  auto& caches = kernel.caches();
  caches.reset_counters();

  for (int u = 0; u < units; ++u) {
    switch (config_.variant) {
      case JacobiVariant::kThreaded:
        simulate_threaded_sweep(kernel, p, false);
        break;
      case JacobiVariant::kThreadedNT:
        simulate_threaded_sweep(kernel, p, true);
        break;
      case JacobiVariant::kWavefront:
        simulate_wavefront_pass(kernel, p);
        break;
    }
  }
  executed_sweeps_ = (executed_sweeps_ + units * step_unit) % config_.sweeps;

  // Build per-worker timing work from the measured traffic.
  const int sockets = machine.spec().sockets;
  const double n3 = static_cast<double>(config_.n) * config_.n * config_.n;
  const double updates_per_worker = n3 * units * step_unit / workers;
  const double cyc_per_update = wavefront
                                    ? config_.wavefront_cycles_per_update
                                    : config_.cycles_per_update;

  std::vector<perfmodel::ThreadWork> work(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    const int cpu = p.cpus[static_cast<std::size_t>(w)];
    const auto& t = caches.cpu_traffic(cpu);
    perfmodel::ThreadWork& tw = work[static_cast<std::size_t>(w)];
    tw.cpu = cpu;
    tw.iterations = updates_per_worker;
    tw.cycles_per_iter = cyc_per_update;
    tw.instructions = updates_per_worker * config_.instructions_per_update;
    tw.l2_bytes = (t.l1_fills + t.l1_writebacks) * 64.0;
    tw.l3_bytes = (t.l2_fills + t.l2_writebacks) * 64.0;
    // Streaming kernels lose memory-level parallelism when the hardware
    // prefetchers are disabled (the likwid-features ablation).
    const auto pf = machine.active_prefetchers(cpu);
    if (!pf.hardware_prefetcher && !pf.dcu_prefetcher) {
      tw.prefetch_factor = 0.6;
    }
    tw.mem_bytes_by_socket.assign(static_cast<std::size_t>(sockets), 0.0);
    const int own = machine.socket_of(cpu);
    tw.mem_bytes_by_socket[static_cast<std::size_t>(own)] =
        (t.mem_lines_read + t.mem_lines_written) * 64.0;
    // Cross-socket pipeline handoffs: charge the migrated lines to the
    // remote socket with the synchronization penalty.
    if (t.remote_l3_hits > 0) {
      const int other = (own + 1) % sockets;
      tw.mem_bytes_by_socket[static_cast<std::size_t>(other)] +=
          t.remote_l3_hits * 64.0 * config_.cross_socket_sync_penalty;
    }
  }

  perfmodel::MachineModel model = perfmodel::default_model(machine.spec());
  const auto timing = perfmodel::estimate_slice(
      model, machine, work, snapshot_cpu_load(kernel));

  // Post events: measured cache events plus the instruction mix.
  const double clock_hz = machine.clock_ghz() * 1e9;
  for (int w = 0; w < workers; ++w) {
    const int cpu = p.cpus[static_cast<std::size_t>(w)];
    EventVector ev = caches.core_cache_events(cpu);
    ev.add(EventId::kInstructionsRetired,
           work[static_cast<std::size_t>(w)].instructions);
    // 7-point stencil: 6 adds + 1 multiply per update, packed SSE kernels.
    ev.add(EventId::kFpPackedDouble, updates_per_worker * 3.5);
    ev.add(EventId::kLoadsRetired, updates_per_worker * 5.0);
    ev.add(EventId::kStoresRetired, updates_per_worker);
    ev.add(EventId::kBranchesRetired, updates_per_worker / 2.0);
    ev.add(EventId::kBranchesMispredicted, updates_per_worker * 0.001);
    ev.add(EventId::kCoreCycles,
           timing.thread_seconds[static_cast<std::size_t>(w)] * clock_hz);
    ev.add(EventId::kRefCycles,
           timing.thread_seconds[static_cast<std::size_t>(w)] * clock_hz);
    machine.post_core_events(cpu, ev);
  }
  for (int s = 0; s < sockets; ++s) {
    EventVector uev = caches.uncore_cache_events(s);
    if (!uev.all_zero()) {
      uev.add(EventId::kUncClockticks, timing.seconds * clock_hz);
      machine.post_uncore_events(s, uev);
    }
  }
  return timing.seconds;
}

void reference_jacobi_sweep(std::vector<double>& dst,
                            const std::vector<double>& src, int n) {
  LIKWID_REQUIRE(n >= 3, "reference grid too small");
  LIKWID_REQUIRE(dst.size() == src.size() &&
                     src.size() == static_cast<std::size_t>(n) * n * n,
                 "grid size mismatch");
  const auto at = [n](int k, int j, int i) {
    return (static_cast<std::size_t>(k) * n + static_cast<std::size_t>(j)) * n +
           static_cast<std::size_t>(i);
  };
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        const bool interior = k > 0 && k < n - 1 && j > 0 && j < n - 1 &&
                              i > 0 && i < n - 1;
        if (!interior) {
          dst[at(k, j, i)] = src[at(k, j, i)];
          continue;
        }
        dst[at(k, j, i)] =
            (src[at(k - 1, j, i)] + src[at(k + 1, j, i)] +
             src[at(k, j - 1, i)] + src[at(k, j + 1, i)] +
             src[at(k, j, i - 1)] + src[at(k, j, i + 1)]) /
            6.0;
      }
    }
  }
}

}  // namespace likwid::workloads
