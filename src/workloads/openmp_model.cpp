#include "workloads/openmp_model.hpp"

#include "util/status.hpp"

namespace likwid::workloads {

int expected_creations(OpenMpImpl impl, int num_threads) {
  switch (impl) {
    case OpenMpImpl::kGcc: return num_threads - 1;
    case OpenMpImpl::kIntel: return num_threads;
    case OpenMpImpl::kIntelMpi: return num_threads + 1;
  }
  return 0;
}

TeamLaunch launch_openmp_team(ossim::ThreadRuntime& runtime, OpenMpImpl impl,
                              int num_threads) {
  LIKWID_REQUIRE(num_threads >= 1, "team needs at least one thread");
  TeamLaunch launch;
  launch.worker_tids.push_back(0);  // the master always participates

  switch (impl) {
    case OpenMpImpl::kGcc:
      for (int i = 1; i < num_threads; ++i) {
        launch.worker_tids.push_back(runtime.create_thread());
      }
      break;
    case OpenMpImpl::kIntel: {
      // First created thread is the shepherd, the rest are workers.
      launch.service_tids.push_back(runtime.create_thread());
      for (int i = 1; i < num_threads; ++i) {
        launch.worker_tids.push_back(runtime.create_thread());
      }
      break;
    }
    case OpenMpImpl::kIntelMpi: {
      // The MPI library spins up a progress thread before OpenMP starts.
      launch.service_tids.push_back(runtime.create_thread());
      launch.service_tids.push_back(runtime.create_thread());
      for (int i = 1; i < num_threads; ++i) {
        launch.worker_tids.push_back(runtime.create_thread());
      }
      break;
    }
  }
  // Workers execute the parallel region; service threads sleep.
  for (const int tid : launch.worker_tids) runtime.set_busy(tid, true);
  return launch;
}

}  // namespace likwid::workloads
