// openmp_model.hpp — thread-creation behaviour of the OpenMP runtimes the
// paper discusses, expressed against the simulated pthread layer.
//
// gcc (libgomp):   the master participates; OMP_NUM_THREADS-1 threads are
//                  created, all of them workers.
// Intel (iomp):    OMP_NUM_THREADS threads are created in addition to the
//                  master; the FIRST created thread is a shepherd
//                  (management) thread that must not be pinned; workers are
//                  the master plus the remaining created threads.
// Intel + MPI:     as Intel, but the MPI library creates two runtime
//                  threads first (skip mask 0x3 in the paper's example).
#pragma once

#include <vector>

#include "ossim/threads.hpp"

namespace likwid::workloads {

enum class OpenMpImpl {
  kGcc,
  kIntel,
  kIntelMpi,  ///< Intel OpenMP inside an Intel MPI rank
};

struct TeamLaunch {
  /// tids of the worker threads that execute the parallel region, in
  /// OpenMP thread-id order (worker 0 is the master thread).
  std::vector<int> worker_tids;
  /// tids of runtime service threads (shepherds, MPI progress threads).
  std::vector<int> service_tids;
};

/// Create the team for a parallel region of `num_threads` workers on
/// `runtime`, following the given implementation's creation pattern. Any
/// installed pthread_create hook (likwid-pin's wrapper) observes the
/// creations in the real order.
TeamLaunch launch_openmp_team(ossim::ThreadRuntime& runtime, OpenMpImpl impl,
                              int num_threads);

/// Number of pthread_create calls `launch_openmp_team` will issue; the
/// paper's skip-mask discussion is about which of these to leave unpinned.
int expected_creations(OpenMpImpl impl, int num_threads);

}  // namespace likwid::workloads
