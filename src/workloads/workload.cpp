#include "workloads/workload.hpp"

#include "util/status.hpp"

namespace likwid::workloads {

double run_workload(ossim::SimKernel& kernel, Workload& workload,
                    const Placement& placement, const RunOptions& options) {
  LIKWID_REQUIRE(options.quanta >= 1, "quanta must be positive");
  LIKWID_REQUIRE(!placement.cpus.empty(), "workload needs at least one worker");
  double total = 0;
  const double fraction = 1.0 / options.quanta;
  for (int q = 0; q < options.quanta; ++q) {
    const double t = workload.run_slice(kernel, placement, fraction);
    LIKWID_ASSERT(t >= 0, "negative slice time");
    kernel.advance_time(t);
    total += t;
    if (options.between_quanta && q + 1 < options.quanta) {
      options.between_quanta(q);
    }
  }
  return total;
}

std::vector<int> snapshot_cpu_load(const ossim::SimKernel& kernel) {
  std::vector<int> load(static_cast<std::size_t>(kernel.machine().num_threads()));
  for (int cpu = 0; cpu < kernel.machine().num_threads(); ++cpu) {
    load[static_cast<std::size_t>(cpu)] = kernel.scheduler().busy_load(cpu);
  }
  return load;
}

}  // namespace likwid::workloads
