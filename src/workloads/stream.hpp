// stream.hpp — the OpenMP STREAM triad benchmark (a[i] = b[i] + s*c[i]) as
// a simulated workload.
//
// The arrays are far larger than any cache, so the kernel is modeled
// analytically: every iteration moves 32 bytes of memory traffic (load b,
// load c, write-allocate + write-back a) while STREAM itself reports only
// 24 bytes — the classic discrepancy. Timing goes through the performance
// model (per-thread caps, socket saturation, SMT, oversubscription, NUMA
// homing), and all counter-visible events (flops, loads/stores, cache line
// traffic, memory-controller transfers) are posted to the PMU.
#pragma once

#include <vector>

#include "workloads/compiler.hpp"
#include "workloads/workload.hpp"

namespace likwid::workloads {

struct StreamConfig {
  std::size_t array_length = 20'000'000;  ///< elements per array (doubles)
  int repetitions = 10;                   ///< NTIMES
  CompilerProfile compiler = icc_profile();
  /// NUMA home socket of each worker's chunk (first-touch placement). When
  /// empty, chunks are homed on the socket each worker runs on (the pinned
  /// steady case). For unpinned runs the caller records where init ran.
  std::vector<int> chunk_home_sockets;
};

class StreamTriad final : public Workload {
 public:
  explicit StreamTriad(StreamConfig config);

  std::string name() const override { return "stream-triad"; }

  double run_slice(ossim::SimKernel& kernel, const Placement& p,
                   double fraction) override;

  /// Bytes per iteration that STREAM's own bandwidth report counts.
  static constexpr double kReportedBytesPerIter = 24.0;
  /// Bytes per iteration actually moved (write-allocate included).
  static constexpr double kTrafficBytesPerIter = 32.0;

  /// STREAM-convention bandwidth in MB/s for a measured runtime.
  double reported_bandwidth_mbs(double seconds) const;

  const StreamConfig& config() const { return config_; }

 private:
  StreamConfig config_;
};

/// Functional single-threaded triad on real memory — used by tests to pin
/// down the arithmetic the simulated kernel is standing in for.
void reference_triad(std::vector<double>& a, const std::vector<double>& b,
                     const std::vector<double>& c, double scalar);

}  // namespace likwid::workloads
