// workload.hpp — the workload abstraction executed on the simulated node.
//
// A Workload knows how to run a slice of its total work on a set of worker
// placements: it computes the slice's timing through the performance model
// (and, for cache-bound kernels, the cache simulator), posts the generated
// μarch events to the machine's PMU, and advances the kernel clock. Tools
// (likwid-perfctr) interact with workloads only through counters and wall
// time — exactly like the real tool wrapping an arbitrary binary.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ossim/kernel.hpp"

namespace likwid::workloads {

/// Placement of the worker threads of a parallel region (one cpu per
/// worker, duplicates allowed — that is oversubscription).
struct Placement {
  std::vector<int> cpus;

  int num_workers() const { return static_cast<int>(cpus.size()); }
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Execute `fraction` (0,1] of the total work. Returns the slice's wall
  /// time in seconds. Implementations must post core events for every cpu
  /// they ran on and uncore events for every socket they touched, and must
  /// NOT advance the kernel clock (the runner does).
  virtual double run_slice(ossim::SimKernel& kernel, const Placement& p,
                           double fraction) = 0;
};

struct RunOptions {
  /// Number of equal slices to split the run into. Counter multiplexing
  /// rotates event sets between slices.
  int quanta = 1;
  /// Invoked after each slice except the last (multiplexing switch point).
  std::function<void(int completed_quantum)> between_quanta;
};

/// Run a workload to completion; returns total wall time and advances the
/// kernel clock.
double run_workload(ossim::SimKernel& kernel, Workload& workload,
                    const Placement& placement, const RunOptions& options = {});

/// Build the per-cpu load vector from the scheduler (workers plus any other
/// threads occupying hardware threads).
std::vector<int> snapshot_cpu_load(const ossim::SimKernel& kernel);

}  // namespace likwid::workloads
