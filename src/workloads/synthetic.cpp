#include "workloads/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "perfmodel/exec_model.hpp"
#include "util/status.hpp"

namespace likwid::workloads {

using hwsim::EventId;
using hwsim::EventVector;

namespace {

/// Dense enumeration index of a hardware thread such that threads sharing
/// a cache of `shared_by` threads occupy one contiguous block (SMT siblings
/// adjacent, then cores, then sockets — the APIC enumeration order).
int dense_index(const hwsim::MachineSpec& spec, const hwsim::HwThread& t) {
  return (t.socket * spec.cores_per_socket + t.core_index) *
             spec.threads_per_core +
         t.smt;
}

}  // namespace

SyntheticKernel::SyntheticKernel(SyntheticConfig config)
    : config_(std::move(config)) {
  LIKWID_REQUIRE(config_.iterations_per_sweep > 0,
                 "synthetic kernel needs a positive iteration count");
  LIKWID_REQUIRE(config_.sweeps > 0, "sweeps must be positive");
  LIKWID_REQUIRE(config_.access.stride_bytes >= 8,
                 "stride below one element (8 bytes)");
  LIKWID_REQUIRE(config_.access.store_fraction >= 0.0 &&
                     config_.access.store_fraction <= 1.0,
                 "store_fraction must be within [0,1]");
  LIKWID_REQUIRE(config_.mix.mispredict_ratio >= 0.0 &&
                     config_.mix.mispredict_ratio <= 1.0,
                 "mispredict_ratio must be within [0,1]");
}

SweepTraffic SyntheticKernel::sweep_traffic(const hwsim::SimMachine& machine,
                                            const Placement& p,
                                            int worker) const {
  LIKWID_REQUIRE(worker >= 0 && worker < p.num_workers(),
                 "worker index out of range");
  const hwsim::MachineSpec& spec = machine.spec();
  const AccessPattern& a = config_.access;

  SweepTraffic t;
  if (a.working_set_bytes == 0) return t;

  const double line = 64.0;
  const double stride = static_cast<double>(a.stride_bytes);
  const double ws = static_cast<double>(a.working_set_bytes);
  t.lines = ws / std::max(line, stride);
  t.store_lines = a.store_fraction * t.lines;
  const double page = static_cast<double>(spec.tlb.page_size);
  t.pages = ws / std::max(page, stride);
  if (t.pages > static_cast<double>(spec.tlb.entries)) {
    // A cyclic sweep over more pages than the DTLB holds misses on every
    // page, every sweep (same all-or-nothing LRU argument as for caches).
    t.dtlb_misses = t.pages;
  }

  // Resident footprint of one worker at cache-line granularity.
  const double footprint = t.lines * line;

  // A level overflows when the combined footprint of all workers mapped to
  // one cache instance exceeds that instance's capacity. Workers are mapped
  // to instances by the dense topology enumeration (SMT siblings share L1,
  // a socket shares L3, ...).
  auto overflows = [&](int level) {
    if (!spec.has_data_cache(level)) return true;  // no such level: fall through
    const hwsim::CacheLevelSpec& c = spec.data_cache(level);
    const int share = static_cast<int>(c.shared_by_threads);
    const int instance_of_worker =
        dense_index(spec, machine.thread(p.cpus[static_cast<std::size_t>(
            worker)])) /
        share;
    double sum = 0;
    for (int w = 0; w < p.num_workers(); ++w) {
      const int inst =
          dense_index(spec,
                      machine.thread(p.cpus[static_cast<std::size_t>(w)])) /
          share;
      if (inst == instance_of_worker) sum += footprint;
    }
    return sum > static_cast<double>(c.size_bytes);
  };

  t.misses_l1 = overflows(1);
  t.misses_l2 = t.misses_l1 && overflows(2);
  const int llc = spec.last_level_cache();
  t.misses_llc = llc >= 3 ? (t.misses_l2 && overflows(3)) : t.misses_l2;
  return t;
}

double SyntheticKernel::run_slice(ossim::SimKernel& kernel,
                                  const Placement& p, double fraction) {
  const int workers = p.num_workers();
  LIKWID_REQUIRE(workers >= 1, "synthetic kernel needs at least one worker");

  auto& machine = kernel.machine();
  const hwsim::MachineSpec& spec = machine.spec();
  const int sockets = spec.sockets;
  const InstructionMix& mix = config_.mix;
  const AccessPattern& acc = config_.access;

  const double sweeps = config_.sweeps * fraction;
  const double iters = config_.iterations_per_sweep * sweeps;

  // --- timing through the performance model ------------------------------
  std::vector<perfmodel::ThreadWork> work(static_cast<std::size_t>(workers));
  std::vector<SweepTraffic> traffic(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    traffic[static_cast<std::size_t>(w)] = sweep_traffic(machine, p, w);
    const SweepTraffic& t = traffic[static_cast<std::size_t>(w)];

    perfmodel::ThreadWork& tw = work[static_cast<std::size_t>(w)];
    tw.cpu = p.cpus[static_cast<std::size_t>(w)];
    tw.iterations = iters;
    tw.cycles_per_iter = mix.cycles;
    tw.instructions = iters * mix.instructions;

    const double read_lines =
        (acc.nontemporal_stores ? t.lines - t.store_lines : t.lines) * sweeps;
    const double wb_lines =
        (acc.nontemporal_stores ? 0.0 : t.store_lines) * sweeps;
    const double nt_lines =
        (acc.nontemporal_stores ? t.store_lines : 0.0) * sweeps;

    const double l1_in = t.misses_l1 ? read_lines : 0.0;
    const double l1_out = t.misses_l1 ? wb_lines : 0.0;
    const double l2_in = t.misses_l2 ? read_lines : 0.0;
    const double l2_out = t.misses_l2 ? wb_lines : 0.0;
    const double mem_r = t.misses_llc ? read_lines : 0.0;
    const double mem_w = (t.misses_llc ? wb_lines : 0.0) + nt_lines;

    tw.l2_bytes = (l1_in + l1_out) * 64.0;
    tw.l3_bytes = (l2_in + l2_out) * 64.0;
    tw.mem_bytes_by_socket.assign(static_cast<std::size_t>(sockets), 0.0);
    tw.mem_bytes_by_socket[static_cast<std::size_t>(
        machine.socket_of(tw.cpu))] = (mem_r + mem_w) * 64.0;
    const auto pf = machine.active_prefetchers(tw.cpu);
    if (!pf.hardware_prefetcher && !pf.dcu_prefetcher) {
      tw.prefetch_factor = 0.6;
    }
  }

  perfmodel::MachineModel model = perfmodel::default_model(spec);
  const auto timing = perfmodel::estimate_slice(
      model, machine, work, snapshot_cpu_load(kernel));

  // --- event posting ------------------------------------------------------
  std::vector<EventVector> core_ev(
      static_cast<std::size_t>(machine.num_threads()));
  std::vector<EventVector> unc_ev(static_cast<std::size_t>(sockets));
  std::vector<bool> cpu_used(static_cast<std::size_t>(machine.num_threads()),
                             false);
  const double clock_hz = machine.clock_ghz() * 1e9;
  const bool has_l3 = spec.has_data_cache(3);

  for (int w = 0; w < workers; ++w) {
    const perfmodel::ThreadWork& tw = work[static_cast<std::size_t>(w)];
    const SweepTraffic& t = traffic[static_cast<std::size_t>(w)];
    EventVector& ev = core_ev[static_cast<std::size_t>(tw.cpu)];
    cpu_used[static_cast<std::size_t>(tw.cpu)] = true;

    ev.add(EventId::kInstructionsRetired, tw.instructions);
    ev.add(EventId::kFpPackedDouble, iters * mix.packed_double);
    ev.add(EventId::kFpScalarDouble, iters * mix.scalar_double);
    ev.add(EventId::kFpPackedSingle, iters * mix.packed_single);
    ev.add(EventId::kFpScalarSingle, iters * mix.scalar_single);
    ev.add(EventId::kLoadsRetired, iters * mix.loads);
    ev.add(EventId::kStoresRetired, iters * mix.stores);
    const double branches = iters * mix.branches;
    ev.add(EventId::kBranchesRetired, branches);
    ev.add(EventId::kBranchesMispredicted, branches * mix.mispredict_ratio);
    ev.add(EventId::kDtlbMisses, t.dtlb_misses * sweeps);

    const double read_lines =
        (acc.nontemporal_stores ? t.lines - t.store_lines : t.lines) * sweeps;
    const double wb_lines =
        (acc.nontemporal_stores ? 0.0 : t.store_lines) * sweeps;
    const double nt_lines =
        (acc.nontemporal_stores ? t.store_lines : 0.0) * sweeps;

    if (t.misses_l1) {
      ev.add(EventId::kL1DLinesIn, read_lines);
      ev.add(EventId::kL1DLinesOut, wb_lines);
      ev.add(EventId::kL2Requests, read_lines + wb_lines);
    }
    if (t.misses_l2) {
      ev.add(EventId::kL2Misses, read_lines);
      ev.add(EventId::kL2LinesIn, read_lines);
      ev.add(EventId::kL2LinesOut, wb_lines);
    }
    const double mem_r = t.misses_llc ? read_lines : 0.0;
    const double mem_w = (t.misses_llc ? wb_lines : 0.0) + nt_lines;
    ev.add(EventId::kBusTransMem, mem_r + mem_w);

    const int sock = machine.socket_of(tw.cpu);
    EventVector& uev = unc_ev[static_cast<std::size_t>(sock)];
    if (has_l3 && t.misses_l2) {
      // Steady-state streaming: every line brought into L3 is later
      // victimized, so LINES_IN tracks LINES_OUT (the Table II signature).
      uev.add(EventId::kUncL3LinesIn, read_lines);
      uev.add(EventId::kUncL3LinesOut, read_lines);
      uev.add(EventId::kUncL3Hits, t.misses_llc ? 0.0 : read_lines);
      uev.add(EventId::kUncL3Misses, t.misses_llc ? read_lines : 0.0);
    }
    uev.add(EventId::kUncMemReads, mem_r);
    uev.add(EventId::kUncMemWrites, mem_w);
  }

  for (int cpu = 0; cpu < machine.num_threads(); ++cpu) {
    if (!cpu_used[static_cast<std::size_t>(cpu)]) continue;
    EventVector& ev = core_ev[static_cast<std::size_t>(cpu)];
    double busy = 0;
    for (int w = 0; w < workers; ++w) {
      if (work[static_cast<std::size_t>(w)].cpu == cpu) {
        busy = std::max(busy,
                        timing.thread_seconds[static_cast<std::size_t>(w)]);
      }
    }
    ev.add(EventId::kCoreCycles, busy * clock_hz);
    ev.add(EventId::kRefCycles, busy * clock_hz);
    machine.post_core_events(cpu, ev);
  }
  for (int s = 0; s < sockets; ++s) {
    if (!unc_ev[static_cast<std::size_t>(s)].all_zero()) {
      unc_ev[static_cast<std::size_t>(s)].add(EventId::kUncClockticks,
                                              timing.seconds * clock_hz);
      machine.post_uncore_events(s, unc_ev[static_cast<std::size_t>(s)]);
    }
  }
  return timing.seconds;
}

// --- factories --------------------------------------------------------------

SyntheticConfig copy_kernel(std::size_t elements, int sweeps,
                            bool nontemporal) {
  SyntheticConfig c;
  c.name = nontemporal ? "copy-nt" : "copy";
  c.iterations_per_sweep = static_cast<double>(elements);
  c.sweeps = sweeps;
  c.mix.cycles = 1.0;
  c.mix.instructions = 2.5;  // load, store, fraction of loop control
  c.mix.loads = 1.0;
  c.mix.stores = 1.0;
  c.mix.branches = 0.25;  // 4x unrolled backedge
  c.mix.mispredict_ratio = 0.001;
  c.access.working_set_bytes = 2 * 8 * elements;  // source + destination
  c.access.stride_bytes = 8;
  c.access.store_fraction = 0.5;  // the destination half is written
  c.access.nontemporal_stores = nontemporal;
  return c;
}

SyntheticConfig daxpy_kernel(std::size_t elements, int sweeps) {
  SyntheticConfig c;
  c.name = "daxpy";
  c.iterations_per_sweep = static_cast<double>(elements);
  c.sweeps = sweeps;
  c.mix.cycles = 1.0;
  c.mix.instructions = 3.5;
  c.mix.packed_double = 1.0;  // one packed FMA pair = 2 flops per element
  c.mix.loads = 2.0;          // x[i] and y[i]
  c.mix.stores = 1.0;         // y[i]
  c.mix.branches = 0.25;
  c.mix.mispredict_ratio = 0.001;
  c.access.working_set_bytes = 2 * 8 * elements;
  c.access.stride_bytes = 8;
  // y is loaded *and* stored, so no line is a pure store target.
  c.access.store_fraction = 0.0;
  return c;
}

SyntheticConfig triad_kernel(std::size_t elements, int sweeps) {
  SyntheticConfig c;
  c.name = "stream_triad";
  c.iterations_per_sweep = static_cast<double>(elements);
  c.sweeps = sweeps;
  // The icc triad profile (workloads::CompilerProfile): vectorized, two
  // cycles and 2.5 instructions per element.
  c.mix.cycles = 2.0;
  c.mix.instructions = 2.5;
  c.mix.packed_double = 1.0;  // one packed add+mul pair = 2 flops
  c.mix.loads = 2.0;          // b[i] and c[i]
  c.mix.stores = 1.0;         // a[i]
  c.mix.branches = 0.25;
  c.mix.mispredict_ratio = 0.001;
  c.access.working_set_bytes = 3 * 8 * elements;
  c.access.stride_bytes = 8;
  c.access.store_fraction = 1.0 / 3.0;  // the a[] third is written
  return c;
}

SyntheticConfig dot_kernel(std::size_t elements, int sweeps) {
  SyntheticConfig c;
  c.name = "dot";
  c.iterations_per_sweep = static_cast<double>(elements);
  c.sweeps = sweeps;
  c.mix.cycles = 1.0;
  c.mix.instructions = 3.0;
  c.mix.packed_double = 1.0;  // multiply + accumulate = 2 flops per element
  c.mix.loads = 2.0;
  c.mix.stores = 0.0;  // the sum lives in a register
  c.mix.branches = 0.25;
  c.mix.mispredict_ratio = 0.001;
  c.access.working_set_bytes = 2 * 8 * elements;
  c.access.stride_bytes = 8;
  return c;
}

SyntheticConfig saxpy_kernel(std::size_t elements, int sweeps) {
  SyntheticConfig c = daxpy_kernel(elements, sweeps);
  c.name = "saxpy";
  c.mix.packed_double = 0.0;
  c.mix.packed_single = 0.5;  // 4-wide packed single: 2 flops = half an op
  c.access.working_set_bytes = 2 * 4 * elements;  // floats
  return c;
}

SyntheticConfig dgemm_kernel(std::size_t n, std::size_t block) {
  LIKWID_REQUIRE(block > 0 && block <= n, "dgemm block must be in [1, n]");
  SyntheticConfig c;
  c.name = "dgemm";
  // One iteration = one packed multiply-add pair (4 flops); 2*n^3 flops.
  c.iterations_per_sweep = static_cast<double>(n) * static_cast<double>(n) *
                           static_cast<double>(n) / 2.0;
  c.sweeps = 1;
  c.mix.cycles = 1.0;  // two packed ops per cycle: 4 flops/cycle peak
  c.mix.instructions = 3.0;
  c.mix.packed_double = 2.0;  // mul + add, both packed
  c.mix.loads = 2.0;
  c.mix.stores = 0.5;
  c.mix.branches = 0.1;
  c.mix.mispredict_ratio = 0.0005;
  // The blocked panels stay cache-resident.
  c.access.working_set_bytes = 3 * 8 * block * block;
  c.access.stride_bytes = 8;
  c.access.store_fraction = 0.0;
  return c;
}

SyntheticConfig branchy_kernel(std::size_t elements, int sweeps,
                               double mispredict_ratio) {
  SyntheticConfig c;
  c.name = "branchy";
  c.iterations_per_sweep = static_cast<double>(elements);
  c.sweeps = sweeps;
  // Cost model: ~16 cycles flushed per mispredicted branch.
  c.mix.cycles = 1.5 + 16.0 * mispredict_ratio;
  c.mix.instructions = 4.0;
  c.mix.loads = 1.0;
  c.mix.branches = 1.0;  // one data-dependent branch per element
  c.mix.mispredict_ratio = mispredict_ratio;
  c.access.working_set_bytes = 8 * elements;
  c.access.stride_bytes = 8;
  return c;
}

SyntheticConfig tlb_thrash_kernel(std::size_t pages, int sweeps,
                                  std::uint64_t page_size) {
  SyntheticConfig c;
  c.name = "tlb-thrash";
  c.iterations_per_sweep = static_cast<double>(pages);
  c.sweeps = sweeps;
  c.mix.cycles = 4.0;  // latency-bound page walk
  c.mix.instructions = 3.0;
  c.mix.loads = 1.0;
  c.mix.branches = 0.25;
  c.mix.mispredict_ratio = 0.001;
  c.access.working_set_bytes = pages * page_size;
  c.access.stride_bytes = page_size;
  return c;
}

SyntheticConfig cache_ladder_kernel(std::uint64_t working_set_bytes,
                                    int sweeps) {
  LIKWID_REQUIRE(working_set_bytes >= 64, "ladder working set below a line");
  SyntheticConfig c;
  c.name = "cache-ladder";
  c.iterations_per_sweep = static_cast<double>(working_set_bytes) / 64.0;
  c.sweeps = sweeps;
  c.mix.cycles = 2.0;
  c.mix.instructions = 3.0;
  c.mix.loads = 1.0;  // one 8-byte load per line per iteration
  c.mix.branches = 0.25;
  c.mix.mispredict_ratio = 0.001;
  c.access.working_set_bytes = working_set_bytes;
  c.access.stride_bytes = 64;
  return c;
}

}  // namespace likwid::workloads
