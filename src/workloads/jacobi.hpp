// jacobi.hpp — the 3D 7-point Jacobi smoother of the paper's case studies
// (Sections IV-B and IV-C), in three variants:
//
//   kThreaded    standard threaded sweep, temporal stores (write-allocate)
//   kThreadedNT  same decomposition with nontemporal (streaming) stores
//   kWavefront   temporally blocked pipeline-parallel wavefront: D threads
//                apply D successive time steps to a plane wave passing
//                through the grid, exchanging intermediate planes through
//                ring buffers that live in the shared L3 — provided all
//                threads of the group are pinned to one socket.
//
// Unlike STREAM, Jacobi runs through the cache simulator line by line, so
// write-allocate savings, shared-L3 reuse and the penalty of splitting a
// wavefront group across sockets are *measured* (through the PMU's uncore
// counters), not asserted.
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace likwid::workloads {

enum class JacobiVariant { kThreaded, kThreadedNT, kWavefront };

struct JacobiConfig {
  int n = 100;      ///< cubic grid extent (N^3 points)
  int sweeps = 4;   ///< time steps; for kWavefront a multiple of the
                    ///< pipeline depth (= worker count)
  JacobiVariant variant = JacobiVariant::kThreaded;

  /// Core-bound cost per lattice update for the compiler-generated
  /// threaded kernels and the hand-written assembly wavefront kernel.
  double cycles_per_update = 10.0;
  double wavefront_cycles_per_update = 8.0;
  double instructions_per_update = 9.0;

  /// Ring-buffer depth (planes) between pipeline stages.
  int ring_planes = 4;

  /// Latency amplification for cross-socket pipeline traffic: wavefront
  /// stage handoffs through QPI are synchronous plane ping-pongs, far more
  /// expensive than their raw byte count (see DESIGN.md).
  double cross_socket_sync_penalty = 5.0;
};

class JacobiStencil final : public Workload {
 public:
  explicit JacobiStencil(JacobiConfig config);

  std::string name() const override;

  /// Workers must be placed on pairwise distinct cpus.
  double run_slice(ossim::SimKernel& kernel, const Placement& p,
                   double fraction) override;

  double total_updates() const;
  /// Million lattice-site updates per second for a measured runtime.
  double mlups(double seconds) const;

  const JacobiConfig& config() const { return config_; }

 private:
  struct SweepStats {
    double updates_per_worker = 0;
  };

  void simulate_threaded_sweep(ossim::SimKernel& kernel, const Placement& p,
                               bool nontemporal);
  void simulate_wavefront_pass(ossim::SimKernel& kernel, const Placement& p);
  void sweep_plane(ossim::SimKernel& kernel, int cpu, std::uint64_t src_base,
                   std::uint64_t dst_base, int src_plane, int dst_plane,
                   bool nontemporal);

  JacobiConfig config_;
  int executed_sweeps_ = 0;
  std::uint64_t old_base_ = 0;
  std::uint64_t new_base_ = 0;
};

/// Functional reference sweep on real memory (tests pin the arithmetic this
/// simulated kernel stands in for): dst interior points become the average
/// of their six neighbours in src; boundary points are copied.
/// Arrays are n*n*n doubles, index (k*n + j)*n + i.
void reference_jacobi_sweep(std::vector<double>& dst,
                            const std::vector<double>& src, int n);

}  // namespace likwid::workloads
