#include "workloads/stream.hpp"

#include <cmath>

#include "perfmodel/exec_model.hpp"
#include "util/status.hpp"

namespace likwid::workloads {

using hwsim::EventId;
using hwsim::EventVector;

StreamTriad::StreamTriad(StreamConfig config) : config_(std::move(config)) {
  LIKWID_REQUIRE(config_.array_length > 0, "empty stream arrays");
  LIKWID_REQUIRE(config_.repetitions > 0, "repetitions must be positive");
}

double StreamTriad::reported_bandwidth_mbs(double seconds) const {
  const double total_iters = static_cast<double>(config_.array_length) *
                             config_.repetitions;
  return total_iters * kReportedBytesPerIter / seconds / 1e6;
}

double StreamTriad::run_slice(ossim::SimKernel& kernel, const Placement& p,
                              double fraction) {
  const int workers = p.num_workers();
  LIKWID_REQUIRE(workers >= 1, "stream needs at least one worker");
  LIKWID_REQUIRE(config_.chunk_home_sockets.empty() ||
                     static_cast<int>(config_.chunk_home_sockets.size()) ==
                         workers,
                 "chunk_home_sockets must match the worker count");

  auto& machine = kernel.machine();
  const int sockets = machine.spec().sockets;
  const CompilerProfile& cc = config_.compiler;

  const double total_iters = static_cast<double>(config_.array_length) *
                             config_.repetitions * fraction;
  const double iters_per_worker = total_iters / workers;

  // Build the per-thread work descriptors.
  std::vector<perfmodel::ThreadWork> work(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    perfmodel::ThreadWork& tw = work[static_cast<std::size_t>(w)];
    tw.cpu = p.cpus[static_cast<std::size_t>(w)];
    tw.iterations = iters_per_worker;
    tw.cycles_per_iter = cc.triad_cycles_per_iter;
    tw.instructions = iters_per_worker * cc.triad_instr_per_iter;
    const double traffic = iters_per_worker * kTrafficBytesPerIter;
    tw.l2_bytes = traffic;
    tw.l3_bytes = traffic;
    tw.mem_bytes_by_socket.assign(static_cast<std::size_t>(sockets), 0.0);
    const int home = config_.chunk_home_sockets.empty()
                         ? machine.socket_of(tw.cpu)
                         : config_.chunk_home_sockets[static_cast<std::size_t>(w)];
    LIKWID_REQUIRE(home >= 0 && home < sockets, "invalid home socket");
    tw.mem_bytes_by_socket[static_cast<std::size_t>(home)] = traffic;
    tw.bw_scale = cc.bw_scale;
    // Disabled hardware prefetchers cost streaming bandwidth.
    const auto pf = machine.active_prefetchers(tw.cpu);
    if (!pf.hardware_prefetcher && !pf.dcu_prefetcher) {
      tw.prefetch_factor = 0.6;
    }
  }

  perfmodel::MachineModel model = perfmodel::default_model(machine.spec());
  perfmodel::TimingOptions topts;
  topts.smt_share = cc.smt_share;
  topts.socket_bw_scale = cc.socket_bw_scale;
  const auto timing = perfmodel::estimate_slice(
      model, machine, work, snapshot_cpu_load(kernel), topts);

  // Aggregate per-cpu events (counting is core-based: co-scheduled workers
  // add up on their shared hardware thread) and per-socket uncore events.
  std::vector<EventVector> core_ev(
      static_cast<std::size_t>(machine.num_threads()));
  std::vector<EventVector> unc_ev(static_cast<std::size_t>(sockets));
  std::vector<bool> cpu_used(static_cast<std::size_t>(machine.num_threads()),
                             false);
  const double clock_hz = machine.clock_ghz() * 1e9;

  for (int w = 0; w < workers; ++w) {
    const perfmodel::ThreadWork& tw = work[static_cast<std::size_t>(w)];
    EventVector& ev = core_ev[static_cast<std::size_t>(tw.cpu)];
    cpu_used[static_cast<std::size_t>(tw.cpu)] = true;
    const double iters = tw.iterations;

    ev.add(EventId::kInstructionsRetired, tw.instructions);
    // Triad: one add and one mul per element.
    if (cc.vectorized) {
      ev.add(EventId::kFpPackedDouble, iters);  // 2 flops per packed op pair
    } else {
      ev.add(EventId::kFpScalarDouble, 2.0 * iters);
    }
    ev.add(EventId::kLoadsRetired, 2.0 * iters);
    ev.add(EventId::kStoresRetired, iters);
    const double branches = iters / 4.0;  // unrolled loop backedge
    ev.add(EventId::kBranchesRetired, branches);
    ev.add(EventId::kBranchesMispredicted, branches * 0.002);

    const double lines = iters * kTrafficBytesPerIter / 64.0;
    ev.add(EventId::kL1DLinesIn, lines);
    ev.add(EventId::kL1DLinesOut, lines / 4.0);  // the store stream
    ev.add(EventId::kL2Requests, lines);
    ev.add(EventId::kL2Misses, lines);
    ev.add(EventId::kL2LinesIn, lines);
    ev.add(EventId::kL2LinesOut, lines / 4.0);
    ev.add(EventId::kBusTransMem, lines);
    ev.add(EventId::kDtlbMisses, iters * 8.0 / 4096.0);  // one per page

    // Socket-level traffic to the chunk's home controller: 3 line reads and
    // 1 line write per 4 lines of traffic.
    for (int s = 0; s < sockets; ++s) {
      const double bytes = tw.mem_bytes_by_socket[static_cast<std::size_t>(s)];
      if (bytes <= 0) continue;
      EventVector& uev = unc_ev[static_cast<std::size_t>(s)];
      const double slines = bytes / 64.0;
      uev.add(EventId::kUncMemReads, slines * 3.0 / 4.0);
      uev.add(EventId::kUncMemWrites, slines / 4.0);
      uev.add(EventId::kUncL3LinesIn, slines * 3.0 / 4.0);
      uev.add(EventId::kUncL3LinesOut, slines * 3.0 / 4.0);
      uev.add(EventId::kUncL3Misses, slines);
    }
  }

  // Cycle accounting: a hardware thread is unhalted for the whole slice it
  // hosts workers on (spin-waiting at the closing barrier).
  for (int cpu = 0; cpu < machine.num_threads(); ++cpu) {
    if (!cpu_used[static_cast<std::size_t>(cpu)]) continue;
    EventVector& ev = core_ev[static_cast<std::size_t>(cpu)];
    // Busy time of the slowest worker on this cpu.
    double busy = 0;
    for (int w = 0; w < workers; ++w) {
      if (work[static_cast<std::size_t>(w)].cpu == cpu) {
        busy = std::max(busy,
                        timing.thread_seconds[static_cast<std::size_t>(w)]);
      }
    }
    ev.add(EventId::kCoreCycles, busy * clock_hz);
    ev.add(EventId::kRefCycles, busy * clock_hz);
    machine.post_core_events(cpu, ev);
  }
  for (int s = 0; s < sockets; ++s) {
    if (!unc_ev[static_cast<std::size_t>(s)].all_zero()) {
      unc_ev[static_cast<std::size_t>(s)].add(
          EventId::kUncClockticks, timing.seconds * clock_hz);
      machine.post_uncore_events(s, unc_ev[static_cast<std::size_t>(s)]);
    }
  }
  return timing.seconds;
}

void reference_triad(std::vector<double>& a, const std::vector<double>& b,
                     const std::vector<double>& c, double scalar) {
  LIKWID_REQUIRE(a.size() == b.size() && b.size() == c.size(),
                 "triad arrays must have equal length");
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = b[i] + scalar * c[i];
  }
}

}  // namespace likwid::workloads
