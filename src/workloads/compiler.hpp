// compiler.hpp — compiler code-quality profiles for the STREAM case study.
//
// The paper benchmarks the identical STREAM triad source compiled with
// Intel icc 11.1 and gcc 4.3.3 and finds materially different bandwidth
// behaviour: icc's vectorized, software-prefetched loop saturates the
// socket with few threads and gains nothing from SMT; gcc's code sustains
// less bandwidth per thread and per socket but tolerates oversubscription
// and benefits from SMT. A CompilerProfile captures exactly those degrees
// of freedom.
#pragma once

#include <string>

namespace likwid::workloads {

struct CompilerProfile {
  std::string name;
  /// Core-bound cost of one triad iteration (a[i] = b[i] + s*c[i]).
  double triad_cycles_per_iter = 2.0;
  /// Retired instructions per triad iteration.
  double triad_instr_per_iter = 3.0;
  /// Triad flops issued as packed (vectorized) SSE: true for icc.
  bool vectorized = true;
  /// Fraction of the hardware per-thread bandwidth this code achieves.
  double bw_scale = 1.0;
  /// Fraction of the hardware socket bandwidth achievable in aggregate.
  double socket_bw_scale = 1.0;
  /// Per-thread core share when the SMT sibling is busy (0.5 = no gain,
  /// >0.5 = SMT helps hide this code's latencies).
  double smt_share = 0.5;
};

/// Intel icc 11.1 -O3 -xSSE4.2: dense SSE code, saturates memory early.
inline CompilerProfile icc_profile() {
  return CompilerProfile{"icc", 2.0, 2.5, true, 1.0, 1.0, 0.5};
}

/// gcc 4.3.3 -O3: scalar code, lower bandwidth, SMT-friendly.
inline CompilerProfile gcc_profile() {
  return CompilerProfile{"gcc", 4.5, 6.0, false, 0.55, 0.80, 0.65};
}

}  // namespace likwid::workloads
