#include "collect/store.hpp"

#include <algorithm>
#include <cmath>

#include "collect/wire.hpp"
#include "util/status.hpp"

namespace likwid::collect {

namespace {

/// Logical (uncompressed) size of one sample: sequence + both timestamps
/// + one double per metric slot. The baseline the compression ratio in
/// StoreStats and the ingest bench is measured against.
std::size_t logical_bytes(const monitor::Sample& sample) {
  return sizeof(std::uint64_t) + 2 * sizeof(double) +
         sample.values.size() * sizeof(double);
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(StoreConfig config) : config_(config) {
  LIKWID_REQUIRE(config_.chunk_points > 0, "chunk_points must be positive");
  LIKWID_REQUIRE(config_.downsample_seconds > 0,
                 "downsample_seconds must be positive");
  LIKWID_REQUIRE(config_.summary_factor > 0,
                 "summary_factor must be positive");
}

void TimeSeriesStore::append(std::uint64_t node_id,
                             const monitor::Sample& sample) {
  LIKWID_REQUIRE(sample.schema != nullptr, "sample without a schema");
  Series& series = nodes_[node_id][sample.schema->group_id];
  if (!series.schema) series.schema = sample.schema;
  series.open.push_back(sample);
  ++stats_.samples_appended;
  if (series.open.size() >= config_.chunk_points) close_open_chunk(series);
}

void TimeSeriesStore::append_batch(std::uint64_t node_id,
                                   std::span<const monitor::Sample> samples) {
  for (const monitor::Sample& sample : samples) append(node_id, sample);
}

void TimeSeriesStore::close_open_chunk(Series& series) {
  Bytes chunk;
  // Store chunks are self-scoped like wire batches; the schema travels
  // beside the chunk in the Series, so the payload's id slot is unused.
  encode_samples_payload(series.open, /*schema_id=*/0, chunk);
  stats_.bytes_compressed += chunk.size();
  for (const monitor::Sample& sample : series.open) {
    stats_.bytes_uncompressed += logical_bytes(sample);
  }
  series.open.clear();
  series.chunks.push_back(std::move(chunk));
  ++stats_.chunks_closed;
  while (series.chunks.size() > config_.raw_chunks_per_series) {
    const Bytes evicted = std::move(series.chunks.front());
    series.chunks.pop_front();
    ++stats_.chunks_evicted;
    downsample_chunk(series, evicted);
  }
}

void TimeSeriesStore::downsample_chunk(Series& series, const Bytes& chunk) {
  std::vector<monitor::Sample> samples;
  const bool ok = decode_samples_payload(chunk, series.schema, samples);
  LIKWID_REQUIRE(ok, "store chunk failed to decode — memory corruption?");
  const std::size_t n_metrics = series.schema->metric_ids.size();
  for (const monitor::Sample& sample : samples) {
    const double window =
        std::floor(sample.t_start / config_.downsample_seconds) *
        config_.downsample_seconds;
    if (series.buckets.empty() || series.buckets.back().t_start != window) {
      Bucket bucket;
      bucket.t_start = window;
      bucket.t_end = window + config_.downsample_seconds;
      bucket.agg.resize(n_metrics);
      series.buckets.push_back(std::move(bucket));
    }
    Bucket& bucket = series.buckets.back();
    for (std::size_t m = 0; m < n_metrics; ++m) {
      MetricAgg& agg = bucket.agg[m];
      const double v = sample.values[m];
      if (bucket.count == 0) {
        agg = {v, v, v};
      } else {
        agg.sum += v;
        agg.min = std::min(agg.min, v);
        agg.max = std::max(agg.max, v);
      }
    }
    ++bucket.count;
    ++stats_.samples_downsampled;
  }
  while (series.buckets.size() > config_.buckets_per_series) {
    fold_buckets(series);
  }
}

void TimeSeriesStore::fold_buckets(Series& series) {
  const std::size_t fold =
      std::min(config_.summary_factor, series.buckets.size());
  Bucket summary = std::move(series.buckets.front());
  series.buckets.pop_front();
  for (std::size_t i = 1; i < fold; ++i) {
    const Bucket& next = series.buckets.front();
    summary.t_end = next.t_end;
    summary.count += next.count;
    for (std::size_t m = 0; m < summary.agg.size(); ++m) {
      summary.agg[m].sum += next.agg[m].sum;
      summary.agg[m].min = std::min(summary.agg[m].min, next.agg[m].min);
      summary.agg[m].max = std::max(summary.agg[m].max, next.agg[m].max);
    }
    series.buckets.pop_front();
  }
  stats_.buckets_folded += fold;
  series.summaries.push_back(std::move(summary));
  while (series.summaries.size() > config_.summaries_per_series) {
    stats_.samples_forgotten += series.summaries.front().count;
    series.summaries.pop_front();
    ++stats_.summaries_evicted;
  }
}

std::vector<std::uint64_t> TimeSeriesStore::nodes() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, series] : nodes_) ids.push_back(id);
  return ids;
}

void TimeSeriesStore::raw_samples(std::uint64_t node_id,
                                  std::vector<monitor::Sample>& out) const {
  const auto node = nodes_.find(node_id);
  if (node == nodes_.end()) return;
  for (const auto& [group, series] : node->second) {
    for (const Bytes& chunk : series.chunks) {
      const bool ok = decode_samples_payload(chunk, series.schema, out);
      LIKWID_REQUIRE(ok, "store chunk failed to decode — memory corruption?");
    }
    out.insert(out.end(), series.open.begin(), series.open.end());
  }
}

const Series* TimeSeriesStore::series(std::uint64_t node_id,
                                      core::NameId group_id) const {
  const auto node = nodes_.find(node_id);
  if (node == nodes_.end()) return nullptr;
  const auto series = node->second.find(group_id);
  return series == node->second.end() ? nullptr : &series->second;
}

const std::map<core::NameId, Series>* TimeSeriesStore::node_series(
    std::uint64_t node_id) const {
  const auto node = nodes_.find(node_id);
  return node == nodes_.end() ? nullptr : &node->second;
}

std::uint64_t TimeSeriesStore::samples_in_raw() const {
  std::uint64_t total = 0;
  for (const auto& [id, groups] : nodes_) {
    for (const auto& [group, series] : groups) {
      total += series.open.size() +
               series.chunks.size() * config_.chunk_points;
    }
  }
  return total;
}

std::uint64_t TimeSeriesStore::samples_in_buckets() const {
  std::uint64_t total = 0;
  for (const auto& [id, groups] : nodes_) {
    for (const auto& [group, series] : groups) {
      for (const Bucket& bucket : series.buckets) total += bucket.count;
    }
  }
  return total;
}

std::uint64_t TimeSeriesStore::samples_in_summaries() const {
  std::uint64_t total = 0;
  for (const auto& [id, groups] : nodes_) {
    for (const auto& [group, series] : groups) {
      for (const Bucket& summary : series.summaries) total += summary.count;
    }
  }
  return total;
}

std::uint64_t TimeSeriesStore::retained_chunk_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [id, groups] : nodes_) {
    for (const auto& [group, series] : groups) {
      for (const Bytes& chunk : series.chunks) total += chunk.size();
    }
  }
  return total;
}

}  // namespace likwid::collect
