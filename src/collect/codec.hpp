// codec.hpp — low-level encoding primitives of the collector wire format
// and the time-series store.
//
// The distributed monitoring stack (Röhl et al. 2017) moves counter
// samples from thousands of node agents to one collector; at that volume
// the encoding is the bandwidth bill. Three primitives cover everything
// the subsystem ships or stores:
//
//   - LEB128 varints (with zigzag for signed deltas) for ids, counts and
//     sequence-number deltas — small integers cost one byte;
//   - a Gorilla-style XOR codec for double streams (Pelkonen et al.,
//     "Gorilla: A Fast, Scalable, In-Memory Time Series Database"):
//     each value is XORed with its predecessor — or, for predictable
//     series like timestamps, a caller-supplied prediction (lossless
//     float delta-of-delta) — and only the meaningful mantissa window
//     crosses the wire, so slowly-varying counter series cost a few
//     BITS per point instead of eight bytes;
//   - CRC32 (IEEE) framing so a torn or corrupted record is detected and
//     dropped instead of poisoning the store.
//
// All of it is lossless: decode(encode(x)) reproduces the exact bit
// pattern of every double and integer, which is what lets query results
// over ingested samples stay bit-equal to an in-process rollup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace likwid::collect {

using Bytes = std::vector<std::uint8_t>;

// --- varint / zigzag --------------------------------------------------------

/// Append `value` as a LEB128 varint (1 byte per 7 bits, little groups
/// first, high bit = continuation).
void put_uvarint(Bytes& out, std::uint64_t value);

/// Zigzag-fold a signed value so small magnitudes of either sign encode
/// short: 0,-1,1,-2,... -> 0,1,2,3,...
constexpr std::uint64_t zigzag_encode(std::int64_t value) noexcept {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t value) noexcept {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

inline void put_svarint(Bytes& out, std::int64_t value) {
  put_uvarint(out, zigzag_encode(value));
}

/// Bounds-checked sequential reader over an encoded byte span. All reads
/// return std::nullopt past the end or on malformed input and leave the
/// reader failed; callers check ok() once at the end of a record instead
/// of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  std::optional<std::uint64_t> uvarint() noexcept;
  std::optional<std::int64_t> svarint() noexcept {
    const auto raw = uvarint();
    if (!raw) return std::nullopt;
    return zigzag_decode(*raw);
  }

  /// Next `n` raw bytes, or std::nullopt when fewer remain.
  std::optional<std::span<const std::uint8_t>> bytes(std::size_t n) noexcept;

  /// Fixed-width little-endian u32 (CRC trailers).
  std::optional<std::uint32_t> u32le() noexcept;

  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept {
    return failed_ ? 0 : data_.size() - pos_;
  }
  bool ok() const noexcept { return !failed_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// --- bit I/O ----------------------------------------------------------------

/// MSB-first bit appender backing the XOR codec. Bits land in a byte
/// vector; the final partial byte is zero-padded by finish().
class BitWriter {
 public:
  void put_bit(bool bit);
  /// Append the low `count` bits of `value`, most significant first.
  void put_bits(std::uint64_t value, int count);
  /// Flush the partial byte and return the buffer (writer reusable after
  /// clear()).
  const Bytes& finish();

  std::size_t bit_count() const noexcept { return bit_count_; }
  void clear() noexcept {
    buffer_.clear();
    bit_count_ = 0;
  }

 private:
  Bytes buffer_;
  std::size_t bit_count_ = 0;
};

/// MSB-first bit reader; past-the-end reads fail the reader permanently
/// (ok() goes false) and return zeros, mirroring ByteReader's discipline.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  bool get_bit() noexcept;
  std::uint64_t get_bits(int count) noexcept;
  bool ok() const noexcept { return !failed_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t bit_pos_ = 0;
  bool failed_ = false;
};

// --- Gorilla XOR codec for double streams -----------------------------------

/// Streaming encoder for one double series. The first value is written
/// verbatim (64 bits); every later value XORs against its predecessor:
/// identical -> one '0' bit; same meaningful-bit window as the previous
/// XOR -> '10' + the window bits; otherwise '11' + 5-bit leading-zero
/// count + 6-bit window length + the window bits. State is per-series, so
/// interleaved series each use their own encoder.
class XorDoubleEncoder {
 public:
  void append(BitWriter& out, double value);

  /// Same bit grammar, but XOR against an explicit `prediction` instead
  /// of the previous value — the lossless float analog of delta-of-delta.
  /// A caller that predicts well (e.g. linear extrapolation over a steady
  /// sampling cadence) leaves near-zero residuals where plain prev-XOR
  /// churns most of the mantissa. The decoder must reconstruct the exact
  /// same prediction from already-decoded values. The first value is
  /// still written verbatim; `prediction` is ignored for it.
  void append(BitWriter& out, double value, double prediction);

 private:
  std::uint64_t prev_bits_ = 0;
  int prev_leading_ = -1;  ///< -1: no window established yet
  int prev_trailing_ = 0;
  bool first_ = true;
};

/// Decoder mirroring XorDoubleEncoder bit for bit.
class XorDoubleDecoder {
 public:
  double next(BitReader& in);

  /// Counterpart of the predicted append: XORs the decoded residual
  /// against `prediction` (ignored for the verbatim first value).
  double next(BitReader& in, double prediction);

 private:
  std::uint64_t prev_bits_ = 0;
  int prev_leading_ = 0;
  int prev_trailing_ = 0;
  bool first_ = true;
};

// --- CRC32 ------------------------------------------------------------------

/// CRC32 (IEEE 802.3, reflected 0xEDB88320), the canonical zlib CRC.
/// `seed` chains partial computations: crc32(b, crc32(a)) == crc32(a+b).
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0) noexcept;

/// Append a fixed-width little-endian u32 (the CRC trailer of a frame).
void put_u32le(Bytes& out, std::uint32_t value);

}  // namespace likwid::collect
