#include "collect/service.hpp"

#include <chrono>

#include "util/status.hpp"

namespace likwid::collect {

CollectorService::CollectorService(ServiceConfig config)
    : config_(config) {
  LIKWID_REQUIRE(config_.num_nodes > 0, "service needs at least one node");
  LIKWID_REQUIRE(config_.ingest_threads > 0,
                 "service needs at least one ingest thread");
  if (config_.ingest_threads > config_.num_nodes) {
    config_.ingest_threads = config_.num_nodes;
  }
  rings_.reserve(config_.num_nodes);
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    rings_.push_back(
        std::make_unique<monitor::SpscRing<Bytes>>(config_.ring_capacity));
  }
  decoders_.resize(config_.num_nodes);
  shards_.reserve(config_.ingest_threads);
  for (std::size_t i = 0; i < config_.ingest_threads; ++i) {
    shards_.push_back(std::make_unique<TimeSeriesStore>(config_.store));
  }
  frames_dropped_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(config_.num_nodes);
}

CollectorService::~CollectorService() { stop(); }

std::size_t CollectorService::num_shards() const noexcept {
  return shards_.size();
}

std::size_t CollectorService::shard_of(std::uint64_t node_id) const noexcept {
  return static_cast<std::size_t>(node_id) % config_.ingest_threads;
}

void CollectorService::start() {
  util::MutexLock lock(lifecycle_mutex_);
  if (started_) return;
  LIKWID_REQUIRE(!stopped_, "a stopped service cannot be restarted");
  started_ = true;
  threads_.reserve(config_.ingest_threads);
  for (std::size_t i = 0; i < config_.ingest_threads; ++i) {
    threads_.emplace_back([this, i] { ingest_loop(i); });
  }
}

void CollectorService::stop() {
  util::MutexLock lock(lifecycle_mutex_);
  if (!started_ || stopped_) return;
  stopping_.store(true, std::memory_order_release);
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
  stopped_ = true;
}

bool CollectorService::publish(std::uint64_t node_id, Bytes&& frame) {
  LIKWID_REQUIRE(node_id < rings_.size(), "publish to unknown node");
  monitor::SpscRing<Bytes>& ring = *rings_[node_id];
  if (ring.try_push(std::move(frame))) {
    frames_published_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Same backpressure contract as the agent fleet's transport: retry the
  // full ring until the deadline, then give the frame up AND attribute
  // the loss to its node.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.publish_deadline_seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
    if (ring.try_push(std::move(frame))) {
      frames_published_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  frames_dropped_[node_id].fetch_add(1, std::memory_order_relaxed);
  return false;
}

void CollectorService::ingest_loop(std::size_t shard_index) {
  TimeSeriesStore& store = *shards_[shard_index];
  std::vector<monitor::Sample> scratch;
  Bytes frame;
  while (true) {
    bool drained_any = false;
    for (std::size_t node = shard_index; node < rings_.size();
         node += config_.ingest_threads) {
      while (rings_[node]->try_pop(frame)) {
        drained_any = true;
        scratch.clear();
        decoders_[node].consume(frame, scratch);
        if (!scratch.empty()) {
          store.append_batch(node, scratch);
        }
      }
    }
    if (!drained_any) {
      // Rings empty: exit once stop() raised the flag (producers are
      // done, so nothing more can arrive), otherwise back off briefly.
      if (stopping_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

const TimeSeriesStore& CollectorService::store_for(
    std::uint64_t node_id) const {
  return shard(shard_of(node_id));
}

const TimeSeriesStore& CollectorService::shard(std::size_t index) const {
  LIKWID_REQUIRE(index < shards_.size(), "shard index out of range");
  return *shards_[index];
}

const StreamDecoder& CollectorService::decoder_for(
    std::uint64_t node_id) const {
  LIKWID_REQUIRE(node_id < decoders_.size(), "unknown node");
  return decoders_[node_id];
}

DecodeStats CollectorService::decode_stats() const {
  DecodeStats total;
  for (const StreamDecoder& decoder : decoders_) {
    const DecodeStats& s = decoder.stats();
    total.frames += s.frames;
    total.records += s.records;
    total.batches += s.batches;
    total.samples += s.samples;
    total.bad_crc += s.bad_crc;
    total.truncated += s.truncated;
    total.malformed += s.malformed;
    total.unknown_schema += s.unknown_schema;
    total.skipped_records += s.skipped_records;
  }
  return total;
}

StoreStats CollectorService::store_stats() const {
  StoreStats total;
  for (const auto& shard : shards_) {
    const StoreStats& s = shard->stats();
    total.samples_appended += s.samples_appended;
    total.chunks_closed += s.chunks_closed;
    total.chunks_evicted += s.chunks_evicted;
    total.samples_downsampled += s.samples_downsampled;
    total.buckets_folded += s.buckets_folded;
    total.summaries_evicted += s.summaries_evicted;
    total.samples_forgotten += s.samples_forgotten;
    total.bytes_compressed += s.bytes_compressed;
    total.bytes_uncompressed += s.bytes_uncompressed;
  }
  return total;
}

std::uint64_t CollectorService::frames_dropped() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    total += frames_dropped_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t CollectorService::frames_dropped_for(
    std::uint64_t node_id) const {
  LIKWID_REQUIRE(node_id < config_.num_nodes, "unknown node");
  return frames_dropped_[node_id].load(std::memory_order_relaxed);
}

}  // namespace likwid::collect
