#include "collect/loopback.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/status.hpp"

namespace likwid::collect {

LoopbackCollector::LoopbackCollector(LoopbackConfig config)
    : config_(std::move(config)) {
  LIKWID_REQUIRE(config_.fleet.num_nodes > 0, "fleet needs nodes");
  LIKWID_REQUIRE(config_.batch_samples > 0,
                 "batch_samples must be positive");
  if (config_.producer_threads == 0) config_.producer_threads = 1;
  if (config_.producer_threads > config_.fleet.num_nodes) {
    config_.producer_threads = config_.fleet.num_nodes;
  }
  config_.service.num_nodes = config_.fleet.num_nodes;
  service_ = std::make_unique<CollectorService>(config_.service);
}

ProducerStats LoopbackCollector::produce(std::size_t producer_index) {
  ProducerStats stats;
  stats.samples_dropped_per_node.assign(config_.fleet.num_nodes, 0);
  // The thread's nodes, each with its own generator and stream encoder
  // (strict SPSC: this thread is the only publisher of these streams).
  struct NodeStream {
    std::uint64_t node_id;
    SampleGenerator generator;
    StreamEncoder encoder;
  };
  std::vector<NodeStream> streams;
  for (std::uint64_t node = producer_index; node < config_.fleet.num_nodes;
       node += config_.producer_threads) {
    streams.push_back(NodeStream{node, SampleGenerator(config_.fleet, node),
                                 StreamEncoder(node)});
    Frame header = streams.back().encoder.header();
    if (service_->publish(node, std::move(header.data))) {
      ++stats.frames_sent;
    } else {
      ++stats.frames_dropped;  // header carries no schemas or batches
    }
  }
  // Step-major order interleaves the streams like concurrent agents
  // would, keeping every ring warm instead of bursting one node at a
  // time.
  std::vector<monitor::Sample> batch;
  for (std::size_t step = 0; step < config_.steps;
       step += config_.batch_samples) {
    const std::size_t batch_size =
        std::min(config_.batch_samples, config_.steps - step);
    for (NodeStream& stream : streams) {
      batch.clear();
      for (std::size_t i = 0; i < batch_size; ++i) {
        batch.push_back(stream.generator.next());
      }
      Frame frame = stream.encoder.encode_batch(batch);
      stats.batches_encoded += frame.batch_count;
      stats.samples_encoded += frame.sample_count;
      stats.bytes_encoded += frame.data.size();
      const std::size_t batches = frame.batch_count;
      const std::size_t samples = frame.sample_count;
      if (service_->publish(stream.node_id, std::move(frame.data))) {
        ++stats.frames_sent;
      } else {
        // The frame is gone; attribute the loss and make the encoder
        // re-announce any schemas it carried, so the NEXT frame of the
        // group stays decodable (one drop must never cascade).
        stream.encoder.rollback_schemas(frame);
        ++stats.frames_dropped;
        stats.batches_dropped += batches;
        stats.samples_dropped += samples;
        stats.samples_dropped_per_node[stream.node_id] += samples;
      }
    }
  }
  return stats;
}

void LoopbackCollector::run() {
  LIKWID_REQUIRE(!ran_, "a LoopbackCollector runs once");
  ran_ = true;
  producer_.samples_dropped_per_node.assign(config_.fleet.num_nodes, 0);
  service_->start();
  std::vector<ProducerStats> per_thread(config_.producer_threads);
  {
    std::vector<std::thread> producers;
    producers.reserve(config_.producer_threads);
    for (std::size_t p = 0; p < config_.producer_threads; ++p) {
      producers.emplace_back(
          [this, p, &per_thread] { per_thread[p] = produce(p); });
    }
    for (std::thread& thread : producers) thread.join();
  }
  for (const ProducerStats& stats : per_thread) {
    producer_.frames_sent += stats.frames_sent;
    producer_.frames_dropped += stats.frames_dropped;
    producer_.batches_encoded += stats.batches_encoded;
    producer_.batches_dropped += stats.batches_dropped;
    producer_.samples_encoded += stats.samples_encoded;
    producer_.samples_dropped += stats.samples_dropped;
    producer_.bytes_encoded += stats.bytes_encoded;
    for (std::size_t n = 0; n < stats.samples_dropped_per_node.size(); ++n) {
      producer_.samples_dropped_per_node[n] +=
          stats.samples_dropped_per_node[n];
    }
  }
  service_->stop();
}

std::vector<monitor::Sample> LoopbackCollector::replay(
    std::uint64_t node_id) const {
  SampleGenerator generator(config_.fleet, node_id);
  std::vector<monitor::Sample> samples;
  samples.reserve(config_.steps);
  for (std::size_t step = 0; step < config_.steps; ++step) {
    samples.push_back(generator.sample_at(step));
  }
  return samples;
}

bool LoopbackCollector::node_lossless(std::uint64_t node_id) const {
  if (service_->frames_dropped_for(node_id) != 0) return false;
  const DecodeStats& decode = service_->decoder_for(node_id).stats();
  if (decode.decode_errors() != 0) return false;
  // Raw tier must still hold the full stream (no downsample-on-evict) or
  // the reconstructed fold would see fewer samples than the replay.
  std::vector<monitor::Sample> raw;
  service_->store_for(node_id).raw_samples(node_id, raw);
  return raw.size() == config_.steps && decode.samples == config_.steps;
}

}  // namespace likwid::collect
