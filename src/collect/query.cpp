#include "collect/query.hpp"

#include <algorithm>
#include <string>

#include "core/name_table.hpp"

namespace likwid::collect {

namespace {

/// Slot of `metric_id` in `schema`, or npos.
std::size_t slot_of(const monitor::MetricSchema& schema,
                    core::NameId metric_id) {
  for (std::size_t m = 0; m < schema.metric_ids.size(); ++m) {
    if (schema.metric_ids[m] == metric_id) return m;
  }
  return static_cast<std::size_t>(-1);
}

/// Per-node values of one (group, metric) over the raw tier.
void metric_values(const TimeSeriesStore& store, std::uint64_t node,
                   core::NameId group_id, core::NameId metric_id,
                   std::vector<double>& out) {
  const Series* series = store.series(node, group_id);
  if (series == nullptr || !series->schema) return;
  const std::size_t slot = slot_of(*series->schema, metric_id);
  if (slot == static_cast<std::size_t>(-1)) return;
  std::vector<monitor::Sample> samples;
  for (const Bytes& chunk : series->chunks) {
    decode_samples_payload(chunk, series->schema, samples);
  }
  samples.insert(samples.end(), series->open.begin(), series->open.end());
  out.reserve(out.size() + samples.size());
  for (const monitor::Sample& sample : samples) out.push_back(sample.values[slot]);
}

}  // namespace

QueryEngine::QueryEngine(const CollectorService& service, int window_samples)
    : service_(service), window_samples_(window_samples) {}

std::vector<monitor::Sample> QueryEngine::raw_samples(
    std::uint64_t node_id) const {
  std::vector<monitor::Sample> samples;
  service_.store_for(node_id).raw_samples(node_id, samples);
  // The store keeps one chronological stream per group; the fold wants
  // production order across groups, which the per-step sequence restores.
  std::stable_sort(samples.begin(), samples.end(),
                   [](const monitor::Sample& a, const monitor::Sample& b) {
                     return a.sequence < b.sequence;
                   });
  return samples;
}

std::vector<monitor::SeriesPoint> QueryEngine::rollup(
    std::uint64_t node_id) const {
  monitor::WindowFolder folder(static_cast<int>(node_id), window_samples_);
  for (const monitor::Sample& sample : raw_samples(node_id)) {
    folder.add(sample);
  }
  folder.finish();
  return folder.take_points();
}

std::vector<std::pair<std::uint64_t, double>> QueryEngine::node_means(
    std::string_view group, std::string_view metric) const {
  const core::NameId group_id = core::intern_name(group);
  const core::NameId metric_id = core::intern_name(metric);
  std::vector<std::pair<std::uint64_t, double>> means;
  std::vector<double> values;
  for (std::uint64_t node = 0; node < service_.config().num_nodes; ++node) {
    values.clear();
    metric_values(service_.store_for(node), node, group_id, metric_id,
                  values);
    if (values.empty()) continue;
    double sum = 0;
    for (const double v : values) sum += v;
    means.emplace_back(node, sum / static_cast<double>(values.size()));
  }
  return means;
}

api::ResultTable QueryEngine::fleet_stats(std::string_view group,
                                          std::string_view metric) const {
  const core::NameId group_id = core::intern_name(group);
  const core::NameId metric_id = core::intern_name(metric);
  api::ResultTable table;
  table.group = std::string(group);
  table.has_metrics = true;
  const std::string name(metric);
  table.metrics = {{name + " min", {}},
                   {name + " avg", {}},
                   {name + " max", {}},
                   {name + " p95", {}}};
  std::vector<double> values;
  for (std::uint64_t node = 0; node < service_.config().num_nodes; ++node) {
    values.clear();
    metric_values(service_.store_for(node), node, group_id, metric_id,
                  values);
    if (values.empty()) continue;
    const monitor::WindowStats stats = monitor::compute_stats(values);
    table.cpus.push_back(static_cast<int>(node));
    table.metrics[0].values.push_back(stats.min);
    table.metrics[1].values.push_back(stats.avg);
    table.metrics[2].values.push_back(stats.max);
    table.metrics[3].values.push_back(stats.p95);
  }
  return table;
}

api::ResultTable QueryEngine::top_k(std::string_view group,
                                    std::string_view metric,
                                    std::size_t k) const {
  auto means = node_means(group, metric);
  std::stable_sort(means.begin(), means.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (means.size() > k) means.resize(k);
  api::ResultTable table;
  table.group = std::string(group);
  table.has_metrics = true;
  api::ResultTable::MetricRow row{std::string(metric) + " avg", {}};
  for (const auto& [node, mean] : means) {
    table.cpus.push_back(static_cast<int>(node));
    row.values.push_back(mean);
  }
  table.metrics.push_back(std::move(row));
  return table;
}

api::ResultTable QueryEngine::node_status() const {
  api::ResultTable table;
  table.group = "COLLECT_NODES";
  table.has_metrics = true;
  table.metrics = {{"frames dropped", {}}, {"decode errors", {}},
                   {"samples ingested", {}}, {"samples raw", {}},
                   {"samples downsampled", {}}, {"samples summarized", {}}};
  for (std::uint64_t node = 0; node < service_.config().num_nodes; ++node) {
    table.cpus.push_back(static_cast<int>(node));
    const DecodeStats& decode = service_.decoder_for(node).stats();
    double raw = 0, buckets = 0, summaries = 0;
    const TimeSeriesStore& store = service_.store_for(node);
    if (const auto* groups = store.node_series(node)) {
      for (const auto& [group, series] : *groups) {
        raw += static_cast<double>(
            series.open.size() +
            series.chunks.size() * store.config().chunk_points);
        for (const Bucket& bucket : series.buckets) {
          buckets += static_cast<double>(bucket.count);
        }
        for (const Bucket& summary : series.summaries) {
          summaries += static_cast<double>(summary.count);
        }
      }
    }
    table.metrics[0].values.push_back(
        static_cast<double>(service_.frames_dropped_for(node)));
    table.metrics[1].values.push_back(
        static_cast<double>(decode.decode_errors()));
    table.metrics[2].values.push_back(static_cast<double>(decode.samples));
    table.metrics[3].values.push_back(raw);
    table.metrics[4].values.push_back(buckets);
    table.metrics[5].values.push_back(summaries);
  }
  return table;
}

}  // namespace likwid::collect
