// wire.hpp — the versioned binary wire format between node agents and the
// collector.
//
// One stream is one node's connection. Strings cross the wire ONCE per
// stream: the first batch of a schema is preceded by a Schema record that
// maps a small per-stream wire id to the group and metric names; every
// SampleBatch afterwards references the id. Sequence numbers travel as a
// run-length of +1 steps plus zigzag varint deltas for the irregular
// tail; metric columns that stay integral for the whole batch (the
// normal case for hardware counters) travel as zigzag varint deltas,
// everything else as predicted Gorilla-XOR bit streams (codec.hpp).
// Every record carries a CRC32 trailer so a corrupted frame is detected
// and dropped, never ingested.
//
// Layout (all integers LEB128 varints unless noted):
//
//   stream header   u32le magic "LKWD" | u8 version | uvarint node_id
//   record frame    uvarint type | uvarint payload_len | payload
//                   | u32le crc32(type..payload)
//
//   Schema (1)      uvarint wire_schema_id | string group
//                   | uvarint n_metrics | string metric[n]
//                   (string = uvarint len | bytes)
//   SampleBatch (2) uvarint wire_schema_id | uvarint n_samples
//                   | uvarint first_sequence | uvarint regular (leading
//                     samples stepping by exactly +1)
//                   | svarint seq_delta[n-1-regular]
//                   | integer-column bitmask (ceil(n_metrics/8) bytes)
//                   | per integer column: svarint first, svarint delta[n-1]
//                   | bit section: XOR t_start[n] predicted by linear
//                     extrapolation, XOR t_end[n] predicted by t_start +
//                     previous duration, then per non-integer metric slot
//                     XOR value[n] (column-major — a metric's series is
//                     smooth, a sample's row is not)
//   Bye (3)         empty
//
// Version skew: a decoder skips record types it does not know (the frame
// length makes that possible without understanding the payload), so an
// older collector survives a newer agent. Every XOR/delta state is scoped
// to ONE record — a batch dropped under backpressure never corrupts the
// decode of the batches after it.
//
// Thread-safety: encoders and decoders are single-stream state machines,
// confined to one thread at a time (the node's producer, the collector's
// ingest shard).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "collect/codec.hpp"
#include "monitor/config.hpp"

namespace likwid::collect {

inline constexpr std::uint32_t kWireMagic = 0x44574B4CU;  // "LKWD" LE
inline constexpr std::uint8_t kWireVersion = 2;

enum class RecordType : std::uint8_t {
  kSchema = 1,
  kSampleBatch = 2,
  kBye = 3,
};

/// One transport frame: the unit the loopback transport moves and the
/// unit that is dropped whole under backpressure. A frame carries zero or
/// more Schema records followed by at most one SampleBatch, so the batch
/// count of any frame is 0 or 1.
struct Frame {
  Bytes data;
  std::size_t batch_count = 0;   ///< SampleBatch records in the frame
  std::size_t sample_count = 0;  ///< samples across those batches
  /// Schemas first announced by this frame; if the frame is lost the
  /// encoder must be told (rollback_schemas) so the next batch re-sends
  /// them — otherwise every later batch of the group would be
  /// undecodable, turning one dropped frame into silent permanent loss.
  std::vector<std::uint64_t> new_schema_ids;
};

/// Agent-side encoder of one node's stream.
class StreamEncoder {
 public:
  explicit StreamEncoder(std::uint64_t node_id);

  /// The stream header frame (send first; resend-safe — the decoder
  /// accepts repeated identical headers).
  Frame header() const;

  /// Encode `samples` (any schema mix; consecutive runs of one schema
  /// become one SampleBatch record) plus Schema records for schemas this
  /// stream has not announced yet.
  Frame encode_batch(std::span<const monitor::Sample> samples);

  /// Forget the schema announcements carried by a LOST frame so they are
  /// re-sent with the next batch.
  void rollback_schemas(const Frame& lost);

  std::uint64_t node_id() const noexcept { return node_id_; }
  std::uint64_t bytes_encoded() const noexcept { return bytes_encoded_; }
  std::uint64_t samples_encoded() const noexcept { return samples_encoded_; }
  std::uint64_t batches_encoded() const noexcept { return batches_encoded_; }

 private:
  std::uint64_t schema_id_of(const monitor::MetricSchema& schema,
                             Frame& frame);

  std::uint64_t node_id_;
  /// Schema identity is the shared MetricSchema instance: collectors hand
  /// out one per group, so pointer identity is schema identity per node.
  std::map<const monitor::MetricSchema*, std::uint64_t> announced_;
  std::uint64_t next_schema_id_ = 0;
  std::uint64_t bytes_encoded_ = 0;
  std::uint64_t samples_encoded_ = 0;
  std::uint64_t batches_encoded_ = 0;
};

/// Per-stream decode accounting. Every frame the collector accepted ends
/// up in exactly one bucket: decoded, or one of the error counters — the
/// reconciliation the soak test asserts.
struct DecodeStats {
  std::uint64_t frames = 0;          ///< frames consumed
  std::uint64_t records = 0;         ///< records decoded (all types)
  std::uint64_t batches = 0;         ///< SampleBatch records decoded
  std::uint64_t samples = 0;         ///< samples decoded
  std::uint64_t bad_crc = 0;         ///< records dropped: CRC mismatch
  std::uint64_t truncated = 0;       ///< records dropped: frame ran out
  std::uint64_t malformed = 0;       ///< records dropped: bad payload
  std::uint64_t unknown_schema = 0;  ///< batches naming an unseen schema
  std::uint64_t skipped_records = 0; ///< unknown record types (version skew)

  /// Records dropped for any reason (skipped future records are not
  /// errors — that is the version-skew contract working as designed).
  std::uint64_t decode_errors() const noexcept {
    return bad_crc + truncated + malformed + unknown_schema;
  }
};

/// Collector-side decoder of one node's stream.
class StreamDecoder {
 public:
  /// Decode every intact record of `frame`, appending decoded samples to
  /// `out`. Returns the number of samples appended; failures are counted
  /// in stats() and never throw — a hostile or corrupted stream must not
  /// take down the collector.
  std::size_t consume(std::span<const std::uint8_t> frame,
                      std::vector<monitor::Sample>& out);

  bool header_seen() const noexcept { return header_seen_; }
  std::uint64_t node_id() const noexcept { return node_id_; }
  const DecodeStats& stats() const noexcept { return stats_; }

 private:
  bool decode_schema(std::span<const std::uint8_t> payload);
  bool decode_batch(std::span<const std::uint8_t> payload,
                    std::vector<monitor::Sample>& out, std::size_t& decoded);

  bool header_seen_ = false;
  std::uint64_t node_id_ = 0;
  std::map<std::uint64_t, std::shared_ptr<const monitor::MetricSchema>>
      schemas_;
  DecodeStats stats_;
};

/// Encode one schema-homogeneous run of samples as a SampleBatch payload
/// (no framing). Exposed for the time-series store, whose compressed
/// chunks are exactly this payload.
void encode_samples_payload(std::span<const monitor::Sample> samples,
                            std::uint64_t schema_id, Bytes& out);

/// Decode a SampleBatch payload produced by encode_samples_payload,
/// appending the reconstructed samples to `out`. The caller resolves the
/// payload's schema id (peek_payload_schema_id) to the shared schema
/// first — the store passes its series' schema, the wire decoder its
/// per-stream table. Returns false on malformed input.
bool decode_samples_payload(
    std::span<const std::uint8_t> payload,
    const std::shared_ptr<const monitor::MetricSchema>& schema,
    std::vector<monitor::Sample>& out);

/// Read just the schema id prefix of a SampleBatch payload.
bool peek_payload_schema_id(std::span<const std::uint8_t> payload,
                            std::uint64_t& schema_id);

}  // namespace likwid::collect
