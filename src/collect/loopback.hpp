// loopback.hpp — the whole distributed pipeline in one process.
//
// LoopbackCollector wires a deterministic simulated fleet (simfleet.hpp)
// through the wire format (wire.hpp) into a CollectorService: producer
// threads each own a set of node streams and, per node, generate samples,
// encode frames and publish them into the node's stream ring under the
// service's backpressure rules, while the ingest threads decode and store
// concurrently. It is the integration surface the soak test, the ingest
// bench and likwid-collectd all run — the only thing a real deployment
// would change is the transport under publish().
//
// Accounting spans both sides so the loss reconciliation can close:
// producer-side (frames/batches/samples encoded, dropped per node) here,
// consumer-side (decode/store counters) in the service. For a node with
// zero drops, zero decode errors and a raw tier big enough to hold its
// whole stream, query rollups are bit-equal to an in-process fold of
// replay(node).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "collect/query.hpp"
#include "collect/service.hpp"
#include "collect/simfleet.hpp"

namespace likwid::collect {

struct LoopbackConfig {
  SimFleetConfig fleet;
  /// num_nodes is taken from `fleet`; the rest of the service knobs
  /// (ingest threads, ring capacity, publish deadline, store tiers)
  /// apply as given.
  ServiceConfig service;
  std::size_t steps = 64;         ///< samples per node
  std::size_t batch_samples = 8;  ///< samples per published frame
  std::size_t producer_threads = 2;
};

/// Producer-side accounting (the encoder half of the reconciliation).
struct ProducerStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t batches_encoded = 0;
  std::uint64_t batches_dropped = 0;
  std::uint64_t samples_encoded = 0;
  std::uint64_t samples_dropped = 0;
  std::uint64_t bytes_encoded = 0;
  /// Per-node dropped samples — every loss is attributed, mirroring the
  /// agent fleet's lost_per_machine.
  std::vector<std::uint64_t> samples_dropped_per_node;
};

class LoopbackCollector {
 public:
  explicit LoopbackCollector(LoopbackConfig config);

  /// Run the full simulation: start the service, stream every node's
  /// samples from `producer_threads` threads, drain, stop. Callable once.
  void run();

  const CollectorService& service() const noexcept { return *service_; }
  const ProducerStats& producer() const noexcept { return producer_; }
  const LoopbackConfig& config() const noexcept { return config_; }

  QueryEngine query(int window_samples = 5) const {
    return QueryEngine(*service_, window_samples);
  }

  /// Regenerate node's full sample stream (what the producer encoded),
  /// independent of what survived transport and retention.
  std::vector<monitor::Sample> replay(std::uint64_t node_id) const;

  /// Whether node's stream survived loss-free AND its raw tier still
  /// holds every sample — the precondition of the bit-equality check.
  bool node_lossless(std::uint64_t node_id) const;

 private:
  /// Stream every node owned by one producer thread; returns that
  /// thread's accounting (summed into producer_ after the join).
  ProducerStats produce(std::size_t producer_index);

  LoopbackConfig config_;
  std::unique_ptr<CollectorService> service_;
  ProducerStats producer_;
  bool ran_ = false;
};

}  // namespace likwid::collect
