// query.hpp — the collector's query surface.
//
// Queries run over a STOPPED CollectorService (ingest threads joined, so
// every shard store is quiescent) and answer the fleet questions the
// monitoring papers actually ask of a collector: windowed statistics per
// node, the hottest nodes by a metric, and per-node health/loss. Results
// are api::ResultTable — node ids take the cpu-column slot — so the
// existing ASCII/CSV/XML OutputSinks render collector output with zero
// new formatting code.
//
// Bit-equality contract: rollup() reconstructs a node's raw-tier samples
// (lossless XOR decode), re-sorts them into production order by sequence
// and folds them through monitor::WindowFolder — the identical fold
// monitor::Aggregator runs in-process. For a node whose stream lost
// nothing (no drops, no decode errors, no retention eviction), the
// emitted SeriesPoints match an in-process rollup of the same samples
// bit for bit.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "api/result_table.hpp"
#include "collect/service.hpp"
#include "monitor/aggregator.hpp"

namespace likwid::collect {

class QueryEngine {
 public:
  /// `window_samples` is the rollup window width, matching the
  /// monitor-side Aggregator the results are reconciled against.
  explicit QueryEngine(const CollectorService& service,
                       int window_samples = 5);

  /// One node's raw-tier samples in production (sequence) order.
  std::vector<monitor::Sample> raw_samples(std::uint64_t node_id) const;

  /// Windowed min/avg/max/p95 rollup of one node's raw tier (see the
  /// bit-equality contract above).
  std::vector<monitor::SeriesPoint> rollup(std::uint64_t node_id) const;

  /// Fleet-wide windowed statistics of one metric: one column per node,
  /// rows "<metric> min/avg/max/p95" over the node's raw tier.
  api::ResultTable fleet_stats(std::string_view group,
                               std::string_view metric) const;

  /// The k hottest nodes by mean of `metric` over the raw tier,
  /// descending.
  api::ResultTable top_k(std::string_view group, std::string_view metric,
                         std::size_t k) const;

  /// Per-node health and loss accounting: frames dropped under
  /// backpressure, decode errors, samples ingested, and what each
  /// retention tier currently holds.
  api::ResultTable node_status() const;

  int window_samples() const noexcept { return window_samples_; }

 private:
  /// Mean of `metric` per node over the raw tier; nodes without the
  /// metric get no entry.
  std::vector<std::pair<std::uint64_t, double>> node_means(
      std::string_view group, std::string_view metric) const;

  const CollectorService& service_;
  int window_samples_;
};

}  // namespace likwid::collect
