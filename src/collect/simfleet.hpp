// simfleet.hpp — the deterministic simulated fleet feeding the collector.
//
// A thousand-node soak cannot afford a full hwsim machine per node on one
// core, and it does not need one: what the collector pipeline exercises
// is the SHAPE of agent traffic — schema-tagged Sample batches whose
// values drift like counters. SampleGenerator produces exactly that from
// pure hashing (splitmix64 over node/group/slot/step), so the stream is:
//
//   - deterministic and replayable: any (node, seed) regenerates its
//     sample stream exactly, which is how the soak test checks query
//     results against an in-process rollup of the same samples;
//   - counter-flavored: each metric slot follows base + slope * step with
//     small integral jitter, the smooth integral series the XOR codec is
//     built for (and the compression gate measures against).
//
// Thread-safety: a generator is one node's state, owned by one producer
// thread. Distinct generators share nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "monitor/config.hpp"

namespace likwid::collect {

/// splitmix64 finalizer — the cheapest hash with full avalanche; every
/// simulated value is a pure function of (seed, node, group, slot, step).
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// A synthetic MetricSchema ("SIM_<group>_M<slot>" metrics) for tests and
/// benches that run without a monitor::Collector.
std::shared_ptr<const monitor::MetricSchema> make_sim_schema(
    std::string_view group, std::size_t n_metrics);

struct SimFleetConfig {
  std::size_t num_nodes = 1000;
  std::uint64_t seed = 42;
  double interval_seconds = 0.1;
  /// Schemas every node samples; with more than one the generator rotates
  /// per step like a multiplexing agent.
  std::vector<std::shared_ptr<const monitor::MetricSchema>> schemas;
};

/// One node's deterministic sample stream.
class SampleGenerator {
 public:
  SampleGenerator(const SimFleetConfig& config, std::uint64_t node_id);

  /// The next sample (advances one step).
  monitor::Sample next();

  /// The sample of an arbitrary step, without advancing (replay).
  monitor::Sample sample_at(std::uint64_t step) const;

  std::uint64_t node_id() const noexcept { return node_id_; }
  std::uint64_t step() const noexcept { return step_; }

 private:
  double value_at(std::size_t schema_index, std::size_t slot,
                  std::uint64_t step) const;

  SimFleetConfig config_;
  std::uint64_t node_id_;
  std::uint64_t step_ = 0;
};

}  // namespace likwid::collect
