#include "collect/wire.hpp"

#include <cstring>
#include <string>
#include <utility>

#include "core/name_table.hpp"
#include "util/status.hpp"

namespace likwid::collect {

namespace {

/// Append one framed record: type | payload_len | payload | crc32 over
/// the type varint and the payload bytes (a corrupted length desyncs the
/// CRC with overwhelming probability, so it is covered transitively).
void put_record(Bytes& out, RecordType type,
                std::span<const std::uint8_t> payload) {
  const std::size_t type_pos = out.size();
  put_uvarint(out, static_cast<std::uint64_t>(type));
  const std::size_t type_len = out.size() - type_pos;
  put_uvarint(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  std::uint32_t crc = crc32({out.data() + type_pos, type_len});
  crc = crc32(payload, crc);
  put_u32le(out, crc);
}

void put_string(Bytes& out, const std::string& text) {
  put_uvarint(out, text.size());
  out.insert(out.end(), text.begin(), text.end());
}

/// True when `value` is an integral double that round-trips through
/// int64 bit-for-bit (rejects NaN/inf, fractions, magnitudes past 2^53
/// where int64->double rounds, and -0.0 which int64 cannot represent).
bool integral_bits(double value, std::int64_t& out) {
  if (!(value >= -9007199254740992.0 && value <= 9007199254740992.0)) {
    return false;
  }
  const std::int64_t integer = static_cast<std::int64_t>(value);
  const double back = static_cast<double>(integer);
  std::uint64_t a = 0, b = 0;
  std::memcpy(&a, &value, sizeof(a));
  std::memcpy(&b, &back, sizeof(b));
  if (a != b) return false;
  out = integer;
  return true;
}

}  // namespace

void encode_samples_payload(std::span<const monitor::Sample> samples,
                            std::uint64_t schema_id, Bytes& out) {
  LIKWID_REQUIRE(!samples.empty(), "cannot encode an empty sample batch");
  const monitor::MetricSchema& schema = *samples.front().schema;
  put_uvarint(out, schema_id);
  put_uvarint(out, samples.size());
  put_uvarint(out, samples.front().sequence);
  // Sequences almost always step by exactly one, so a run-length prefix
  // collapses the common batch to a single byte; only the samples after
  // the first irregular step pay for an explicit zigzag delta.
  std::size_t regular = 0;
  while (regular + 1 < samples.size() &&
         samples[regular + 1].sequence == samples[regular].sequence + 1) {
    ++regular;
  }
  put_uvarint(out, regular);
  for (std::size_t i = regular + 1; i < samples.size(); ++i) {
    put_svarint(out, static_cast<std::int64_t>(samples[i].sequence -
                                               samples[i - 1].sequence));
  }
  // Counter metrics are integral doubles; a column that stays integral
  // for the whole batch crosses the wire as zigzag varint deltas (about
  // one byte per slowly-moving point) instead of XOR residuals. A
  // per-column bitmask says which path each column took.
  const std::size_t n_metrics = schema.metric_ids.size();
  std::vector<std::vector<std::int64_t>> integer_columns(n_metrics);
  Bytes mask((n_metrics + 7) / 8, 0);
  for (std::size_t m = 0; m < n_metrics; ++m) {
    std::vector<std::int64_t>& column = integer_columns[m];
    column.reserve(samples.size());
    for (const monitor::Sample& s : samples) {
      std::int64_t integer = 0;
      if (!integral_bits(s.values[m], integer)) {
        column.clear();
        break;
      }
      column.push_back(integer);
    }
    if (!column.empty()) mask[m / 8] |= std::uint8_t(1u << (m % 8));
  }
  out.insert(out.end(), mask.begin(), mask.end());
  for (std::size_t m = 0; m < n_metrics; ++m) {
    const std::vector<std::int64_t>& column = integer_columns[m];
    if (column.empty()) continue;
    put_svarint(out, column.front());
    for (std::size_t i = 1; i < column.size(); ++i) {
      // Two's-complement wrap in uint64 keeps extreme deltas defined;
      // the decoder adds them back in uint64 so the wrap cancels.
      put_svarint(out, static_cast<std::int64_t>(
                           static_cast<std::uint64_t>(column[i]) -
                           static_cast<std::uint64_t>(column[i - 1])));
    }
  }
  // Bit section, column-major: both timestamp streams, then each metric
  // slot's series. Columns are smooth over time, which is where the XOR
  // codec earns its bits; rows (one sample's metrics) are not.
  //
  // Timestamps get the predicted variant (lossless float delta-of-delta):
  // plain prev-XOR of two nearby doubles still churns most of the
  // mantissa, but a steady sampling cadence makes t_start linearly
  // extrapolatable and t_end reconstructible from t_start plus the
  // previous sample's duration, leaving residuals of a few bits. The
  // decoder rebuilds the identical predictions from already-decoded
  // values, so round trips stay bit-exact.
  BitWriter bits;
  {
    XorDoubleEncoder t_start;
    double prev = 0.0, prev2 = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const double t = samples[i].t_start;
      const double predicted = i >= 2 ? prev + (prev - prev2) : prev;
      t_start.append(bits, t, predicted);
      prev2 = prev;
      prev = t;
    }
  }
  {
    XorDoubleEncoder t_end;
    double prev_start = 0.0, prev_end = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const monitor::Sample& s = samples[i];
      const double predicted =
          i >= 1 ? s.t_start + (prev_end - prev_start) : 0.0;
      t_end.append(bits, s.t_end, predicted);
      prev_start = s.t_start;
      prev_end = s.t_end;
    }
  }
  for (std::size_t m = 0; m < n_metrics; ++m) {
    if (!integer_columns[m].empty()) continue;  // already in the byte section
    XorDoubleEncoder values;
    for (const monitor::Sample& s : samples) {
      values.append(bits, s.values[m]);
    }
  }
  const Bytes& section = bits.finish();
  out.insert(out.end(), section.begin(), section.end());
}

bool peek_payload_schema_id(std::span<const std::uint8_t> payload,
                            std::uint64_t& schema_id) {
  ByteReader reader(payload);
  const auto id = reader.uvarint();
  if (!id) return false;
  schema_id = *id;
  return true;
}

bool decode_samples_payload(
    std::span<const std::uint8_t> payload,
    const std::shared_ptr<const monitor::MetricSchema>& schema,
    std::vector<monitor::Sample>& out) {
  ByteReader reader(payload);
  if (!reader.uvarint()) return false;  // schema id, resolved by caller
  const auto n_samples = reader.uvarint();
  if (!n_samples || *n_samples == 0) return false;
  // A batch cannot hold more samples than payload bytes (every sample
  // costs at least one bit in each of its streams); anything larger is a
  // malformed length field, not a huge batch.
  if (*n_samples > payload.size() * 8) return false;
  const auto first_seq = reader.uvarint();
  if (!first_seq) return false;
  const auto regular = reader.uvarint();
  if (!regular || *regular >= *n_samples) return false;
  std::vector<std::uint64_t> sequences;
  sequences.reserve(*n_samples);
  sequences.push_back(*first_seq);
  for (std::uint64_t i = 0; i < *regular; ++i) {
    sequences.push_back(sequences.back() + 1);
  }
  for (std::uint64_t i = *regular + 1; i < *n_samples; ++i) {
    const auto delta = reader.svarint();
    if (!delta) return false;
    sequences.push_back(sequences.back() +
                        static_cast<std::uint64_t>(*delta));
  }
  const std::size_t n = sequences.size();
  const std::size_t n_metrics = schema->metric_ids.size();
  // Per-column integer/XOR mode mask, then the integer columns as
  // varint deltas accumulated in uint64 (wrap-safe for hostile input).
  const auto mask = reader.bytes((n_metrics + 7) / 8);
  if (!mask) return false;
  std::vector<std::vector<double>> integer_columns(n_metrics);
  for (std::size_t m = 0; m < n_metrics; ++m) {
    if (((*mask)[m / 8] & (1u << (m % 8))) == 0) continue;
    std::vector<double>& column = integer_columns[m];
    column.reserve(n);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto delta = reader.svarint();
      if (!delta) return false;
      acc = i == 0 ? static_cast<std::uint64_t>(*delta)
                   : acc + static_cast<std::uint64_t>(*delta);
      column.push_back(
          static_cast<double>(static_cast<std::int64_t>(acc)));
    }
  }
  const auto section = reader.bytes(reader.remaining());
  if (!section) return false;
  BitReader bits(*section);
  std::vector<monitor::Sample> decoded(n);
  // Predictions mirror encode_samples_payload expression for expression;
  // IEEE arithmetic is deterministic, so both sides compute identical
  // reference bits.
  {
    XorDoubleDecoder t_start;
    double prev = 0.0, prev2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double predicted = i >= 2 ? prev + (prev - prev2) : prev;
      decoded[i].t_start = t_start.next(bits, predicted);
      prev2 = prev;
      prev = decoded[i].t_start;
    }
  }
  {
    XorDoubleDecoder t_end;
    double prev_start = 0.0, prev_end = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double predicted =
          i >= 1 ? decoded[i].t_start + (prev_end - prev_start) : 0.0;
      decoded[i].t_end = t_end.next(bits, predicted);
      prev_start = decoded[i].t_start;
      prev_end = decoded[i].t_end;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    decoded[i].sequence = sequences[i];
    decoded[i].schema = schema;
    decoded[i].values.resize(n_metrics);
  }
  for (std::size_t m = 0; m < n_metrics; ++m) {
    const std::vector<double>& column = integer_columns[m];
    if (!column.empty()) {
      for (std::size_t i = 0; i < n; ++i) decoded[i].values[m] = column[i];
      continue;
    }
    XorDoubleDecoder values;
    for (std::size_t i = 0; i < n; ++i) {
      decoded[i].values[m] = values.next(bits);
    }
  }
  if (!bits.ok()) return false;
  out.insert(out.end(), std::make_move_iterator(decoded.begin()),
             std::make_move_iterator(decoded.end()));
  return true;
}

StreamEncoder::StreamEncoder(std::uint64_t node_id) : node_id_(node_id) {}

Frame StreamEncoder::header() const {
  Frame frame;
  put_u32le(frame.data, kWireMagic);
  frame.data.push_back(kWireVersion);
  put_uvarint(frame.data, node_id_);
  return frame;
}

std::uint64_t StreamEncoder::schema_id_of(const monitor::MetricSchema& schema,
                                          Frame& frame) {
  const auto it = announced_.find(&schema);
  if (it != announced_.end()) return it->second;
  const std::uint64_t id = next_schema_id_++;
  announced_.emplace(&schema, id);
  frame.new_schema_ids.push_back(id);
  Bytes payload;
  put_uvarint(payload, id);
  put_string(payload, core::resolve_name(schema.group_id));
  put_uvarint(payload, schema.metric_ids.size());
  for (const core::NameId metric : schema.metric_ids) {
    put_string(payload, core::resolve_name(metric));
  }
  put_record(frame.data, RecordType::kSchema, payload);
  return id;
}

Frame StreamEncoder::encode_batch(std::span<const monitor::Sample> samples) {
  Frame frame;
  // Consecutive runs of one schema become one SampleBatch each (group
  // rotation interleaves schemas only when the caller batches across
  // rotation boundaries).
  std::size_t begin = 0;
  while (begin < samples.size()) {
    std::size_t end = begin + 1;
    while (end < samples.size() &&
           samples[end].schema == samples[begin].schema) {
      ++end;
    }
    const auto run = samples.subspan(begin, end - begin);
    const std::uint64_t id = schema_id_of(*run.front().schema, frame);
    Bytes payload;
    encode_samples_payload(run, id, payload);
    put_record(frame.data, RecordType::kSampleBatch, payload);
    frame.batch_count += 1;
    frame.sample_count += run.size();
    begin = end;
  }
  bytes_encoded_ += frame.data.size();
  samples_encoded_ += frame.sample_count;
  batches_encoded_ += frame.batch_count;
  return frame;
}

void StreamEncoder::rollback_schemas(const Frame& lost) {
  for (const std::uint64_t id : lost.new_schema_ids) {
    for (auto it = announced_.begin(); it != announced_.end(); ++it) {
      if (it->second == id) {
        announced_.erase(it);
        break;
      }
    }
  }
}

bool StreamDecoder::decode_schema(std::span<const std::uint8_t> payload) {
  ByteReader reader(payload);
  const auto id = reader.uvarint();
  if (!id) return false;
  const auto group_len = reader.uvarint();
  if (!group_len) return false;
  const auto group_bytes = reader.bytes(*group_len);
  if (!group_bytes) return false;
  const std::string group(group_bytes->begin(), group_bytes->end());
  const auto n_metrics = reader.uvarint();
  if (!n_metrics || *n_metrics > reader.remaining()) return false;
  std::vector<core::NameId> metric_ids;
  metric_ids.reserve(*n_metrics);
  for (std::uint64_t m = 0; m < *n_metrics; ++m) {
    const auto len = reader.uvarint();
    if (!len) return false;
    const auto name = reader.bytes(*len);
    if (!name) return false;
    metric_ids.push_back(core::intern_name(
        std::string_view(reinterpret_cast<const char*>(name->data()),
                         name->size())));
  }
  // Re-announcing an id rebinds it (the encoder only reuses an id after a
  // rollback, for the identical schema, so rebinding is idempotent).
  schemas_[*id] = monitor::MetricSchema::create(group, metric_ids);
  return true;
}

bool StreamDecoder::decode_batch(std::span<const std::uint8_t> payload,
                                 std::vector<monitor::Sample>& out,
                                 std::size_t& decoded) {
  std::uint64_t schema_id = 0;
  if (!peek_payload_schema_id(payload, schema_id)) return false;
  const auto schema = schemas_.find(schema_id);
  if (schema == schemas_.end()) {
    // Counted in its own bucket (the record itself is intact): the
    // announcing frame was lost and the encoder will re-send the schema.
    ++stats_.unknown_schema;
    return true;
  }
  const std::size_t before = out.size();
  if (!decode_samples_payload(payload, schema->second, out)) return false;
  decoded += out.size() - before;
  ++stats_.batches;
  return true;
}

std::size_t StreamDecoder::consume(std::span<const std::uint8_t> frame,
                                   std::vector<monitor::Sample>& out) {
  ++stats_.frames;
  ByteReader reader(frame);
  std::size_t decoded = 0;
  // A header frame starts with the magic; record frames never do (their
  // first byte is a tiny record-type varint).
  if (frame.size() >= 5) {
    ByteReader peek(frame);
    if (peek.u32le().value_or(0) == kWireMagic) {
      (void)reader.bytes(4);  // magic
      const auto version = reader.bytes(1);
      const auto node = reader.uvarint();
      if (!version || (*version)[0] == 0 || !node ||
          (header_seen_ && *node != node_id_)) {
        ++stats_.malformed;
        return decoded;
      }
      node_id_ = *node;
      header_seen_ = true;
    }
  }
  while (reader.ok() && reader.remaining() > 0) {
    const std::size_t record_start = reader.position();
    const auto type = reader.uvarint();
    const std::size_t type_end = reader.position();
    const auto len = reader.uvarint();
    if (!type || !len) {
      ++stats_.truncated;
      break;
    }
    const auto payload = reader.bytes(*len);
    const auto crc = reader.u32le();
    if (!payload || !crc) {
      ++stats_.truncated;
      break;
    }
    // CRC covers the type varint + payload (see put_record).
    std::uint32_t expected =
        crc32(frame.subspan(record_start, type_end - record_start));
    expected = crc32(*payload, expected);
    if (expected != *crc) {
      // The length field parsed, so the framing cursor is still sound;
      // drop just this record and try the next one.
      ++stats_.bad_crc;
      continue;
    }
    ++stats_.records;
    switch (static_cast<RecordType>(*type)) {
      case RecordType::kSchema:
        if (!decode_schema(*payload)) ++stats_.malformed;
        break;
      case RecordType::kSampleBatch:
        if (!decode_batch(*payload, out, decoded)) ++stats_.malformed;
        break;
      case RecordType::kBye:
        break;
      default:
        // Version skew: a future record type is skipped, not an error.
        ++stats_.skipped_records;
        break;
    }
  }
  stats_.samples += decoded;
  return decoded;
}

}  // namespace likwid::collect
