// store.hpp — the collector's bounded in-memory time-series store.
//
// Samples ingested from the fleet land in per-(node, group) series and age
// through three retention tiers, each cheaper per point than the last:
//
//   tier 1  raw samples — an uncompressed open tail plus closed chunks
//           compressed with the wire SampleBatch payload codec (XOR
//           doubles + varint deltas). Lossless: reading the raw tier back
//           reproduces the ingested samples bit for bit.
//   tier 2  downsample buckets — when the raw tier overflows, the oldest
//           chunk is decompressed once and folded into fixed-width
//           count/sum/min/max buckets per metric slot (default 10 s).
//   tier 3  window summaries — when the bucket tier overflows, the oldest
//           `summary_factor` buckets merge into one coarse summary; when
//           even those overflow, the oldest summary is dropped.
//
// Nothing leaves the store unaccounted. Every transition is a counter in
// StoreStats, and the invariant the soak test asserts is
//
//   samples_appended == samples_in_raw() + samples_in_buckets()
//                       + samples_in_summaries() + samples_forgotten
//
// Thread-safety: none — a store shard is owned by exactly one ingest
// thread (the collector service shards nodes over threads precisely so
// the hot append path never takes a lock). Cross-thread reads go through
// the service, which only exposes a shard once its owner has quiesced.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "collect/codec.hpp"
#include "core/name_table.hpp"
#include "monitor/config.hpp"

namespace likwid::collect {

struct StoreConfig {
  /// Samples per compressed chunk; the open tail closes at this size.
  std::size_t chunk_points = 64;
  /// Closed chunks retained per series before downsample-on-evict.
  std::size_t raw_chunks_per_series = 8;
  /// Width of one tier-2 bucket in sample (simulated) seconds.
  double downsample_seconds = 10.0;
  /// Tier-2 buckets retained per series before folding into summaries.
  std::size_t buckets_per_series = 64;
  /// Buckets merged into one tier-3 summary.
  std::size_t summary_factor = 6;
  /// Tier-3 summaries retained per series; beyond this, data is forgotten
  /// (counted, never silent).
  std::size_t summaries_per_series = 32;
};

/// Per-metric-slot aggregate of one bucket or summary.
struct MetricAgg {
  double sum = 0;
  double min = 0;
  double max = 0;
};

/// One tier-2 bucket (or tier-3 summary — same shape, coarser span):
/// count/sum/min/max per metric slot over [t_start, t_end).
struct Bucket {
  double t_start = 0;
  double t_end = 0;
  std::uint64_t count = 0;
  std::vector<MetricAgg> agg;  ///< aligned with the series schema slots
};

/// Retention accounting. Totals are monotonic; the *_in_* helpers on the
/// store report what is currently retained.
struct StoreStats {
  std::uint64_t samples_appended = 0;
  std::uint64_t chunks_closed = 0;
  std::uint64_t chunks_evicted = 0;       ///< raw chunks downsampled away
  std::uint64_t samples_downsampled = 0;  ///< samples moved raw -> buckets
  std::uint64_t buckets_folded = 0;       ///< buckets merged into summaries
  std::uint64_t summaries_evicted = 0;    ///< summaries dropped entirely
  std::uint64_t samples_forgotten = 0;    ///< sample counts those carried
  std::uint64_t bytes_compressed = 0;     ///< closed-chunk bytes, total
  std::uint64_t bytes_uncompressed = 0;   ///< logical bytes of those samples
};

/// One (node, group) series across all three tiers.
struct Series {
  std::shared_ptr<const monitor::MetricSchema> schema;
  std::vector<monitor::Sample> open;  ///< uncompressed tail, newest last
  std::deque<Bytes> chunks;           ///< closed chunks, oldest first
  std::deque<Bucket> buckets;         ///< tier 2, oldest first
  std::deque<Bucket> summaries;       ///< tier 3, oldest first
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(StoreConfig config = {});

  /// Ingest one sample (tier 1 open tail; may cascade chunk close,
  /// chunk eviction, bucket folds and summary evictions).
  void append(std::uint64_t node_id, const monitor::Sample& sample);
  void append_batch(std::uint64_t node_id,
                    std::span<const monitor::Sample> samples);

  /// Node ids with at least one series, ascending.
  std::vector<std::uint64_t> nodes() const;

  /// Reconstruct every raw-tier sample of `node` (all groups; within a
  /// group, chronological). Decompression is exact, so these are
  /// bit-equal to the samples that were appended.
  void raw_samples(std::uint64_t node_id,
                   std::vector<monitor::Sample>& out) const;

  /// The series of (node, group), or nullptr.
  const Series* series(std::uint64_t node_id, core::NameId group_id) const;

  /// All series of one node, keyed by group id (empty map reference
  /// semantics: nullptr when the node is unknown).
  const std::map<core::NameId, Series>* node_series(
      std::uint64_t node_id) const;

  const StoreStats& stats() const noexcept { return stats_; }
  const StoreConfig& config() const noexcept { return config_; }

  /// Currently retained sample counts per tier (for the reconciliation
  /// invariant; see file comment).
  std::uint64_t samples_in_raw() const;
  std::uint64_t samples_in_buckets() const;
  std::uint64_t samples_in_summaries() const;

  /// Bytes currently held in closed compressed chunks.
  std::uint64_t retained_chunk_bytes() const;

 private:
  void close_open_chunk(Series& series);
  void downsample_chunk(Series& series, const Bytes& chunk);
  void fold_buckets(Series& series);

  StoreConfig config_;
  std::map<std::uint64_t, std::map<core::NameId, Series>> nodes_;
  StoreStats stats_;
};

}  // namespace likwid::collect
