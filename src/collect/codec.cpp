#include "collect/codec.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace likwid::collect {

void put_uvarint(Bytes& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::optional<std::uint64_t> ByteReader::uvarint() noexcept {
  if (failed_) return std::nullopt;
  std::uint64_t value = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    const std::uint8_t byte = data_[pos_++];
    if (shift == 63 && byte > 1) break;  // would overflow 64 bits
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) break;
  }
  failed_ = true;
  return std::nullopt;
}

std::optional<std::span<const std::uint8_t>> ByteReader::bytes(
    std::size_t n) noexcept {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return std::nullopt;
  }
  const auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

std::optional<std::uint32_t> ByteReader::u32le() noexcept {
  const auto raw = bytes(4);
  if (!raw) return std::nullopt;
  return static_cast<std::uint32_t>((*raw)[0]) |
         static_cast<std::uint32_t>((*raw)[1]) << 8 |
         static_cast<std::uint32_t>((*raw)[2]) << 16 |
         static_cast<std::uint32_t>((*raw)[3]) << 24;
}

void BitWriter::put_bit(bool bit) {
  const std::size_t byte = bit_count_ / 8;
  if (byte == buffer_.size()) buffer_.push_back(0);
  if (bit) {
    buffer_[byte] |= static_cast<std::uint8_t>(0x80U >> (bit_count_ % 8));
  }
  ++bit_count_;
}

void BitWriter::put_bits(std::uint64_t value, int count) {
  for (int i = count - 1; i >= 0; --i) {
    put_bit(((value >> i) & 1) != 0);
  }
}

const Bytes& BitWriter::finish() { return buffer_; }

bool BitReader::get_bit() noexcept {
  const std::size_t byte = bit_pos_ / 8;
  if (failed_ || byte >= data_.size()) {
    failed_ = true;
    return false;
  }
  const bool bit =
      (data_[byte] & (0x80U >> (bit_pos_ % 8))) != 0;
  ++bit_pos_;
  return bit;
}

std::uint64_t BitReader::get_bits(int count) noexcept {
  std::uint64_t value = 0;
  for (int i = 0; i < count; ++i) {
    value = (value << 1) | static_cast<std::uint64_t>(get_bit());
  }
  return failed_ ? 0 : value;
}

void XorDoubleEncoder::append(BitWriter& out, double value) {
  // Plain Gorilla: the prediction is simply the previous value.
  double prev = 0;
  std::memcpy(&prev, &prev_bits_, sizeof(prev));
  append(out, value, prev);
}

void XorDoubleEncoder::append(BitWriter& out, double value,
                              double prediction) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  if (first_) {
    first_ = false;
    out.put_bits(bits, 64);
    prev_bits_ = bits;
    return;
  }
  std::uint64_t prediction_bits = 0;
  std::memcpy(&prediction_bits, &prediction, sizeof(prediction_bits));
  const std::uint64_t x = bits ^ prediction_bits;
  prev_bits_ = bits;
  if (x == 0) {
    out.put_bit(false);
    return;
  }
  out.put_bit(true);
  // Leading zeros capped at 31 so they fit the 5-bit field of the '11'
  // branch (a window starting further right just carries a few extra
  // zero bits).
  const int leading = std::min(std::countl_zero(x), 31);
  const int trailing = std::countr_zero(x);
  if (prev_leading_ >= 0 && leading >= prev_leading_ &&
      trailing >= prev_trailing_) {
    // Reuse the previous meaningful-bit window: '0' + the window bits.
    out.put_bit(false);
    const int window = 64 - prev_leading_ - prev_trailing_;
    out.put_bits(x >> prev_trailing_, window);
    return;
  }
  // New window: '1' + 5-bit leading count + 6-bit window length (64
  // encodes as 0) + the meaningful bits.
  out.put_bit(true);
  const int window = 64 - leading - trailing;
  out.put_bits(static_cast<std::uint64_t>(leading), 5);
  out.put_bits(static_cast<std::uint64_t>(window) & 0x3F, 6);
  out.put_bits(x >> trailing, window);
  prev_leading_ = leading;
  prev_trailing_ = trailing;
}

double XorDoubleDecoder::next(BitReader& in) {
  double prev = 0;
  std::memcpy(&prev, &prev_bits_, sizeof(prev));
  return next(in, prev);
}

double XorDoubleDecoder::next(BitReader& in, double prediction) {
  std::uint64_t prediction_bits = 0;
  std::memcpy(&prediction_bits, &prediction, sizeof(prediction_bits));
  std::uint64_t bits = 0;
  if (first_) {
    first_ = false;
    bits = in.get_bits(64);
    prev_bits_ = bits;
  } else if (!in.get_bit()) {
    bits = prediction_bits;  // XOR == 0: value matches the prediction
    prev_bits_ = bits;
  } else {
    if (in.get_bit()) {
      prev_leading_ = static_cast<int>(in.get_bits(5));
      const int window = static_cast<int>(in.get_bits(6));
      prev_trailing_ = 64 - prev_leading_ - (window == 0 ? 64 : window);
    }
    const int window = 64 - prev_leading_ - prev_trailing_;
    const std::uint64_t x = in.get_bits(window) << prev_trailing_;
    bits = prediction_bits ^ x;
    prev_bits_ = bits;
  }
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = seed ^ 0xFFFFFFFFU;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

void put_u32le(Bytes& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

}  // namespace likwid::collect
