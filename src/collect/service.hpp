// service.hpp — the collector daemon's ingest core.
//
// One CollectorService multiplexes every node's frame stream into sharded
// time-series stores:
//
//   producer threads ── publish ──> SpscRing<Bytes> per node ─┐
//   (one StreamEncoder per node,       bounded, drop-newest   ├─> ingest
//    deadline-bounded retry,           under backpressure     │   threads
//    every drop attributed)                                   ┘
//   ingest thread i owns nodes with id % ingest_threads == i:
//   StreamDecoder per node -> TimeSeriesStore shard i (no cross-thread
//   store access — the shard is the thread's private state while running)
//
// The backpressure model is the agent fleet's (monitor/agent.hpp): a full
// ring makes the producer retry until a wall-clock deadline, then the
// frame is dropped COUNTED against its node — the soak test reconciles
// producer-side drops + decode errors + ingested batches against
// everything encoded, so no loss path is silent.
//
// Lifecycle: construct -> start() -> producers publish -> producers
// finish -> stop() (drains every ring, joins) -> read stores/stats.
// Reading stores or summed stats while ingest threads run is a data race
// by design — the accessors document they require the stopped state.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "collect/store.hpp"
#include "collect/wire.hpp"
#include "monitor/spsc_ring.hpp"
#include "util/thread_annotations.hpp"

namespace likwid::collect {

struct ServiceConfig {
  std::size_t num_nodes = 1;
  std::size_t ingest_threads = 1;
  /// Frames each node's stream ring holds before publishers see
  /// backpressure.
  std::size_t ring_capacity = 64;
  /// How long publish() retries a full ring before dropping the frame.
  double publish_deadline_seconds = 0.05;
  StoreConfig store;
};

class CollectorService {
 public:
  explicit CollectorService(ServiceConfig config);
  ~CollectorService();

  CollectorService(const CollectorService&) = delete;
  CollectorService& operator=(const CollectorService&) = delete;

  /// Spawn the ingest threads. Idempotent until stop().
  void start();

  /// Drain every stream ring, then join the ingest threads. Producers
  /// must have finished publishing first — then every frame that was
  /// accepted is guaranteed ingested when stop() returns.
  void stop();

  /// Producer side (one thread per node stream, like the SPSC contract).
  /// Pushes `frame` into the node's ring, retrying a full ring until the
  /// publish deadline; a false return means the frame was DROPPED and
  /// counted against the node (the caller rolls back its encoder's schema
  /// announcements for the frame).
  bool publish(std::uint64_t node_id, Bytes&& frame);

  std::size_t num_shards() const noexcept;
  std::size_t shard_of(std::uint64_t node_id) const noexcept;

  /// The store shard holding `node_id`. Requires the stopped state.
  const TimeSeriesStore& store_for(std::uint64_t node_id) const;
  const TimeSeriesStore& shard(std::size_t index) const;

  /// Per-node stream decoder accounting. Requires the stopped state.
  const StreamDecoder& decoder_for(std::uint64_t node_id) const;

  /// Summed decode/store accounting. Requires the stopped state.
  DecodeStats decode_stats() const;
  StoreStats store_stats() const;

  std::uint64_t frames_published() const noexcept {
    return frames_published_.load(std::memory_order_relaxed);
  }
  std::uint64_t frames_dropped() const noexcept;
  std::uint64_t frames_dropped_for(std::uint64_t node_id) const;

  const ServiceConfig& config() const noexcept { return config_; }

 private:
  void ingest_loop(std::size_t shard_index);

  ServiceConfig config_;
  std::vector<std::unique_ptr<monitor::SpscRing<Bytes>>> rings_;  ///< per node
  /// Per-node decoders; owned by the node's ingest thread while running.
  std::vector<StreamDecoder> decoders_;
  std::vector<std::unique_ptr<TimeSeriesStore>> shards_;
  /// Per-node publish-deadline drops (producer-side attribution).
  std::unique_ptr<std::atomic<std::uint64_t>[]> frames_dropped_;
  std::atomic<std::uint64_t> frames_published_{0};
  /// stop() raises this; ingest threads exit after a drain pass finds
  /// every owned ring empty with it set.
  std::atomic<bool> stopping_{false};

  util::Mutex lifecycle_mutex_;
  std::vector<std::thread> threads_ LIKWID_GUARDED_BY(lifecycle_mutex_);
  bool started_ LIKWID_GUARDED_BY(lifecycle_mutex_) = false;
  bool stopped_ LIKWID_GUARDED_BY(lifecycle_mutex_) = false;
};

}  // namespace likwid::collect
