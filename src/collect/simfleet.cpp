#include "collect/simfleet.hpp"

#include <string>

#include "core/name_table.hpp"
#include "util/status.hpp"

namespace likwid::collect {

std::shared_ptr<const monitor::MetricSchema> make_sim_schema(
    std::string_view group, std::size_t n_metrics) {
  std::vector<core::NameId> metric_ids;
  metric_ids.reserve(n_metrics);
  for (std::size_t m = 0; m < n_metrics; ++m) {
    metric_ids.push_back(core::intern_name("SIM_" + std::string(group) +
                                           "_M" + std::to_string(m)));
  }
  return monitor::MetricSchema::create(group, metric_ids);
}

SampleGenerator::SampleGenerator(const SimFleetConfig& config,
                                 std::uint64_t node_id)
    : config_(config), node_id_(node_id) {
  LIKWID_REQUIRE(!config_.schemas.empty(),
                 "a simulated fleet needs at least one schema");
}

double SampleGenerator::value_at(std::size_t schema_index, std::size_t slot,
                                 std::uint64_t step) const {
  // Counter-flavored integral series: base + slope * step + jitter. The
  // mix keys make every (node, group, slot) series distinct while staying
  // a pure function — replayable from (config, node_id) alone.
  const std::uint64_t series_key =
      splitmix64(config_.seed ^ (node_id_ * 0x9E3779B97F4A7C15ULL) ^
                 (schema_index << 32) ^ slot);
  const double base = static_cast<double>(series_key % 100000);
  const double slope = static_cast<double>(1 + (series_key >> 17) % 7);
  const double jitter =
      static_cast<double>(splitmix64(series_key ^ step) % 4);
  return base + slope * static_cast<double>(step) + jitter;
}

monitor::Sample SampleGenerator::sample_at(std::uint64_t step) const {
  const std::size_t schema_index = step % config_.schemas.size();
  const auto& schema = config_.schemas[schema_index];
  monitor::Sample sample;
  sample.sequence = step;
  sample.t_start = static_cast<double>(step) * config_.interval_seconds;
  sample.t_end = sample.t_start + config_.interval_seconds;
  sample.schema = schema;
  sample.values.reserve(schema->metric_ids.size());
  for (std::size_t m = 0; m < schema->metric_ids.size(); ++m) {
    sample.values.push_back(value_at(schema_index, m, step));
  }
  return sample;
}

monitor::Sample SampleGenerator::next() { return sample_at(step_++); }

}  // namespace likwid::collect
