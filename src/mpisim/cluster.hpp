// cluster.hpp — a set of simulated shared-memory nodes forming the
// distributed-memory half of the paper's "hybrid MPI+threads" scenario
// (Section II-C: "mpiexec -n 64 -pernode likwid-pin -c 0-7 -s 0x3 ./a.out").
//
// Each node owns an independent SimMachine and SimKernel: private MSR
// state, private scheduler, private clock. Nothing is shared between
// nodes — exactly the isolation an MPI job sees across hosts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hwsim/machine.hpp"
#include "ossim/kernel.hpp"

namespace likwid::mpisim {

/// One host of the cluster.
struct Node {
  std::unique_ptr<hwsim::SimMachine> machine;
  std::unique_ptr<ossim::SimKernel> kernel;
};

class Cluster {
 public:
  /// Build `num_nodes` identical nodes from `spec`. Each node's scheduler
  /// is seeded differently (seed + node index) so unpinned placement does
  /// not replicate across hosts.
  Cluster(int num_nodes, const hwsim::MachineSpec& spec,
          std::uint64_t seed = 42);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int index);
  const Node& node(int index) const;

  /// Hardware threads per node (all nodes are identical).
  int cpus_per_node() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace likwid::mpisim
