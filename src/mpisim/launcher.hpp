// launcher.hpp — the mpiexec/likwid-mpirun analog: map MPI ranks onto the
// cluster, start each rank's thread runtime (MPI progress threads plus the
// OpenMP team), and optionally wrap every rank in likwid-pin with a
// rank-local slice of the node's cpu list.
//
// This implements the paper's Section V goal ("combination of LIKWID with
// one of the available MPI profiling frameworks to facilitate the
// collection of performance counter data in MPI programs") on top of the
// Section II-C hybrid-pinning mechanics:
//
//   $ export OMP_NUM_THREADS=8
//   $ mpiexec -n 64 -pernode likwid-pin -c 0-7 -s 0x3 ./a.out
//
// The launcher reproduces that command line: -pernode / -npernode rank
// maps, per-rank pin wrappers with the threading model's skip mask (0x3
// for Intel OpenMP inside Intel MPI), and per-rank counter measurement.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/affinity.hpp"
#include "core/perfctr.hpp"
#include "mpisim/cluster.hpp"
#include "workloads/openmp_model.hpp"
#include "workloads/stream.hpp"

namespace likwid::mpisim {

/// How ranks are distributed over nodes when more than one rank runs per
/// node (mpiexec's default block fill vs. cyclic).
enum class RankMapping { kBlock, kRoundRobin };

struct MpirunConfig {
  int np = 1;          ///< total ranks (-n)
  bool pernode = false;  ///< -pernode: exactly one rank per node
  int npernode = 0;      ///< -npernode N; 0 = block-fill np over the nodes
  RankMapping mapping = RankMapping::kBlock;

  workloads::OpenMpImpl omp = workloads::OpenMpImpl::kGcc;
  int omp_threads = 1;  ///< OMP_NUM_THREADS inside each rank

  bool pin = false;  ///< wrap each rank in likwid-pin
  /// Node-scope cpu list (-c); empty = all hardware threads of the node.
  /// Each rank pins within its slice of this list.
  std::vector<int> node_cpu_list;
  /// Skip-mask override (-s); defaults to the threading model's mask
  /// (gcc: 0x0, intel: 0x1, intel inside Intel MPI: 0x3).
  std::optional<util::SkipMask> skip;
};

/// Placement decision for one rank (pure data, computed before launch).
struct RankPlan {
  int rank = 0;
  int node = 0;
  int slot = 0;  ///< index among the ranks on its node
  std::vector<int> pin_cpus;  ///< the rank's slice of the node cpu list
};

/// Compute the rank->node mapping and per-rank cpu slices. Throws
/// Error(kInvalidArgument) when the job does not fit the cluster
/// (np > nodes with -pernode, np > npernode * nodes, empty slices).
std::vector<RankPlan> plan_ranks(const MpirunConfig& config, int num_nodes,
                                 int cpus_per_node);

/// One launched rank: its thread runtime lives on the owning node's
/// kernel; the wrapper (if pinning) observed every thread creation.
struct LaunchedRank {
  RankPlan plan;
  std::unique_ptr<ossim::ThreadRuntime> runtime;
  std::unique_ptr<core::PinWrapper> wrapper;
  workloads::TeamLaunch team;
  std::vector<int> worker_cpus;  ///< final placement of the OpenMP workers
};

/// A running MPI job on the cluster. Construction performs the launch:
/// per rank, the pin wrapper is installed (if configured), the MPI
/// runtime's service threads and the OpenMP team are created, and worker
/// placements are recorded.
class MpiJob {
 public:
  MpiJob(Cluster& cluster, MpirunConfig config);

  MpiJob(const MpiJob&) = delete;
  MpiJob& operator=(const MpiJob&) = delete;

  const MpirunConfig& config() const { return config_; }
  const std::vector<LaunchedRank>& ranks() const { return ranks_; }
  Cluster& cluster() { return cluster_; }

  /// Run the STREAM triad SPMD (every rank executes `stream_config` on its
  /// workers, with all other ranks' workers busy on their cpus). Returns
  /// per-rank wall seconds.
  std::vector<double> run_triad(const workloads::StreamConfig& stream_config);

  struct RankMeasurement {
    int rank = 0;
    int node = 0;
    double seconds = 0;
    std::vector<core::PerfCtr::MetricRow> metrics;
  };
  /// run_triad with a per-rank likwid-perfctr measurement of `group` on
  /// the rank's worker cpus. Rank measurements are serialized (one tool
  /// invocation per rank), so socket-scope uncore events are attributed to
  /// the rank whose measurement is live — the same semantics as running
  /// likwid-perfctr per rank on real hardware.
  std::vector<RankMeasurement> measure_triad(
      const std::string& group,
      const workloads::StreamConfig& stream_config);

 private:
  Cluster& cluster_;
  MpirunConfig config_;
  std::vector<LaunchedRank> ranks_;
};

/// The core::ThreadModel matching an OpenMP implementation profile (for
/// skip-mask defaults).
core::ThreadModel thread_model_for(workloads::OpenMpImpl impl);

}  // namespace likwid::mpisim
