#include "mpisim/cluster.hpp"

#include "util/status.hpp"

namespace likwid::mpisim {

Cluster::Cluster(int num_nodes, const hwsim::MachineSpec& spec,
                 std::uint64_t seed) {
  LIKWID_REQUIRE(num_nodes >= 1, "a cluster needs at least one node");
  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    Node node;
    node.machine = std::make_unique<hwsim::SimMachine>(spec);
    node.kernel = std::make_unique<ossim::SimKernel>(
        *node.machine, seed + static_cast<std::uint64_t>(n));
    nodes_.push_back(std::move(node));
  }
}

Node& Cluster::node(int index) {
  LIKWID_REQUIRE(index >= 0 && index < num_nodes(),
                 "node index out of range");
  return nodes_[static_cast<std::size_t>(index)];
}

const Node& Cluster::node(int index) const {
  LIKWID_REQUIRE(index >= 0 && index < num_nodes(),
                 "node index out of range");
  return nodes_[static_cast<std::size_t>(index)];
}

int Cluster::cpus_per_node() const {
  return nodes_.front().machine->num_threads();
}

}  // namespace likwid::mpisim
