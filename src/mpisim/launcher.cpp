#include "mpisim/launcher.hpp"

#include <algorithm>
#include <string>

#include "api/session.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::mpisim {

core::ThreadModel thread_model_for(workloads::OpenMpImpl impl) {
  switch (impl) {
    case workloads::OpenMpImpl::kGcc: return core::ThreadModel::kGcc;
    case workloads::OpenMpImpl::kIntel: return core::ThreadModel::kIntel;
    case workloads::OpenMpImpl::kIntelMpi: return core::ThreadModel::kIntelMpi;
  }
  return core::ThreadModel::kGcc;
}

std::vector<RankPlan> plan_ranks(const MpirunConfig& config, int num_nodes,
                                 int cpus_per_node) {
  LIKWID_REQUIRE(config.np >= 1, "mpirun needs at least one rank");
  LIKWID_REQUIRE(num_nodes >= 1, "mpirun needs at least one node");
  LIKWID_REQUIRE(config.omp_threads >= 1,
                 "OMP_NUM_THREADS must be at least 1");

  // Ranks allowed per node.
  int per_node = 0;
  if (config.pernode) {
    if (config.np > num_nodes) {
      throw_error(ErrorCode::kInvalidArgument,
                  util::strprintf("-pernode with %d ranks needs %d nodes "
                                  "(cluster has %d)",
                                  config.np, config.np, num_nodes));
    }
    per_node = 1;
  } else if (config.npernode > 0) {
    if (config.np > config.npernode * num_nodes) {
      throw_error(ErrorCode::kInvalidArgument,
                  util::strprintf("%d ranks exceed -npernode %d x %d nodes",
                                  config.np, config.npernode, num_nodes));
    }
    per_node = config.npernode;
  } else {
    per_node = (config.np + num_nodes - 1) / num_nodes;  // block fill
  }

  // Node cpu list the pin slices are cut from.
  std::vector<int> node_list = config.node_cpu_list;
  if (node_list.empty()) {
    for (int c = 0; c < cpus_per_node; ++c) node_list.push_back(c);
  }
  for (const int c : node_list) {
    if (c < 0 || c >= cpus_per_node) {
      throw_error(ErrorCode::kInvalidArgument,
                  util::strprintf("cpu %d in the node list does not exist "
                                  "(node has %d hardware threads)",
                                  c, cpus_per_node));
    }
  }

  std::vector<RankPlan> plans(static_cast<std::size_t>(config.np));
  std::vector<int> slots(static_cast<std::size_t>(num_nodes), 0);
  for (int r = 0; r < config.np; ++r) {
    RankPlan& p = plans[static_cast<std::size_t>(r)];
    p.rank = r;
    if (config.mapping == RankMapping::kRoundRobin) {
      p.node = r % num_nodes;
    } else {
      p.node = r / per_node;
    }
    p.slot = slots[static_cast<std::size_t>(p.node)]++;
    if (p.slot >= per_node) {
      throw_error(ErrorCode::kInvalidArgument,
                  util::strprintf("rank %d overflows node %d (%d slots)", r,
                                  p.node, per_node));
    }
  }

  // Ranks sharing a node partition the node list evenly by slot.
  for (auto& p : plans) {
    const int on_node = slots[static_cast<std::size_t>(p.node)];
    const int chunk = static_cast<int>(node_list.size()) / on_node;
    if (chunk < 1) {
      throw_error(ErrorCode::kInvalidArgument,
                  util::strprintf("node %d hosts %d ranks but the cpu list "
                                  "has only %zu entries",
                                  p.node, on_node, node_list.size()));
    }
    const auto begin = node_list.begin() + p.slot * chunk;
    p.pin_cpus.assign(begin, begin + chunk);
  }
  return plans;
}

MpiJob::MpiJob(Cluster& cluster, MpirunConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  const auto plans =
      plan_ranks(config_, cluster_.num_nodes(), cluster_.cpus_per_node());
  ranks_.reserve(plans.size());
  for (const auto& plan : plans) {
    LaunchedRank rank;
    rank.plan = plan;
    Node& node = cluster_.node(plan.node);
    rank.runtime =
        std::make_unique<ossim::ThreadRuntime>(node.kernel->scheduler());
    if (config_.pin) {
      core::PinConfig pc;
      pc.cpu_list = plan.pin_cpus;
      pc.model = thread_model_for(config_.omp);
      pc.skip = config_.skip.value_or(core::default_skip_mask(pc.model));
      rank.wrapper = std::make_unique<core::PinWrapper>(*rank.runtime, pc);
    }
    rank.team = workloads::launch_openmp_team(*rank.runtime, config_.omp,
                                              config_.omp_threads);
    rank.worker_cpus = rank.runtime->placement(rank.team.worker_tids);
    ranks_.push_back(std::move(rank));
  }
}

// Note on load accounting: launch_openmp_team marks every worker thread
// busy on its hardware thread, so by the end of the constructor the
// schedulers already carry the full job's load — ranks running their
// slices below see the other ranks' workers as contention automatically.

std::vector<double> MpiJob::run_triad(
    const workloads::StreamConfig& stream_config) {
  std::vector<double> seconds;
  seconds.reserve(ranks_.size());
  for (const auto& rank : ranks_) {
    Node& node = cluster_.node(rank.plan.node);
    workloads::StreamTriad triad(stream_config);
    workloads::Placement p;
    p.cpus = rank.worker_cpus;
    seconds.push_back(run_workload(*node.kernel, triad, p));
  }
  return seconds;
}

std::vector<MpiJob::RankMeasurement> MpiJob::measure_triad(
    const std::string& group,
    const workloads::StreamConfig& stream_config) {
  std::vector<RankMeasurement> out;
  out.reserve(ranks_.size());
  for (const auto& rank : ranks_) {
    Node& node = cluster_.node(rank.plan.node);
    // One likwid-perfctr invocation per rank, through the facade: the
    // session attaches to the node's kernel instead of owning a machine.
    const auto session = api::Session::attach(
        *node.kernel, rank.worker_cpus,
        "likwid-mpirun rank " + std::to_string(rank.plan.rank));
    session->add_group(group);
    workloads::StreamTriad triad(stream_config);
    workloads::Placement p;
    p.cpus = rank.worker_cpus;
    session->start();
    const double t = run_workload(*node.kernel, triad, p);
    session->stop();
    RankMeasurement m;
    m.rank = rank.plan.rank;
    m.node = rank.plan.node;
    m.seconds = t;
    m.metrics = session->counters().compute_metrics(0);
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace likwid::mpisim
