// hierarchy.hpp — the full multi-socket cache/memory hierarchy simulator.
//
// Builds per-core (or per-group) L1/L2 caches and per-socket L3 caches from
// a MachineSpec, simulates demand accesses at cache-line granularity with
// write-allocate and write-back semantics, nontemporal stores, hardware
// prefetchers (toggleable at runtime, driven by likwid-features), a small
// data TLB, cross-socket line migration, and produces both detailed traffic
// statistics (for the performance model) and μarch EventVectors (for the
// PMU).
//
// Simplifications vs. silicon, documented in DESIGN.md: MESI is reduced to
// single-owner line migration; AMD's exclusive hierarchy is modeled as
// non-exclusive; memory traffic is attributed to the accessing core's
// socket (first-touch NUMA homing is handled by the workload layer).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cachesim/cache.hpp"
#include "hwsim/apic.hpp"
#include "hwsim/events.hpp"
#include "hwsim/machine_spec.hpp"

namespace likwid::cachesim {

enum class AccessKind {
  kLoad,
  kStore,             ///< write-allocate, write-back
  kStoreNonTemporal,  ///< streaming store: bypasses the hierarchy
};

/// Per-hardware-thread traffic counters (line granularity).
struct CpuTraffic {
  double loads = 0;             ///< line-granular load accesses
  double stores = 0;            ///< line-granular store accesses
  double l1_hits = 0;
  double l1_fills = 0;          ///< lines allocated in L1 (demand+prefetch)
  double l1_writebacks = 0;     ///< dirty L1 victims pushed to L2
  double l2_requests = 0;       ///< demand requests that reached L2
  double l2_hits = 0;
  double l2_misses = 0;
  double l2_fills = 0;
  double l2_writebacks = 0;     ///< dirty L2 victims pushed down
  double l3_hits = 0;           ///< demand lines served from the local L3
  double remote_l3_hits = 0;    ///< lines migrated in from a remote socket
  double mem_lines_read = 0;    ///< lines fetched from local memory
  double mem_lines_written = 0; ///< lines written to memory (wb + NT)
  double nt_store_lines = 0;
  double dtlb_misses = 0;
  double prefetches_issued = 0;

  /// Total demand line traffic between core and L1 (for the exec model).
  double line_accesses() const { return loads + stores; }
};

/// Per-socket ("uncore") traffic counters.
struct SocketTraffic {
  double l3_lines_in = 0;
  double l3_lines_out = 0;   ///< victims (clean and dirty), Table II metric
  double l3_hits = 0;
  double l3_misses = 0;
  double mem_reads = 0;      ///< full-line reads at the memory controller
  double mem_writes = 0;
};

class CacheHierarchy {
 public:
  /// Build the hierarchy for a machine. `threads` must be the machine's
  /// enumeration (used for cache-instance mapping).
  CacheHierarchy(const hwsim::MachineSpec& spec,
                 const std::vector<hwsim::HwThread>& threads);

  /// Set which prefetchers are active for a core (mirrors
  /// SimMachine::active_prefetchers; call after toggling likwid-features).
  void set_prefetchers(int cpu, const hwsim::PrefetcherSpec& active);

  /// Simulate one demand access of `bytes` starting at byte address `addr`
  /// by hardware thread `cpu`. Accesses are decomposed into cache lines.
  void access(int cpu, std::uint64_t addr, std::uint64_t bytes,
              AccessKind kind);

  /// Drop all cache and TLB contents (counters are kept).
  void flush();

  /// Reset all traffic counters (cache contents are kept).
  void reset_counters();

  const CpuTraffic& cpu_traffic(int cpu) const;
  const SocketTraffic& socket_traffic(int socket) const;

  /// Translate accumulated traffic into PMU event vectors. These cover the
  /// cache/memory/TLB events; instruction-level events (flops, branches,
  /// loads/stores retired) are added by the workload engine, which knows
  /// the instruction mix.
  hwsim::EventVector core_cache_events(int cpu) const;
  hwsim::EventVector uncore_cache_events(int socket) const;

  int num_l1_instances() const { return static_cast<int>(l1_.size()); }
  int num_l2_instances() const { return static_cast<int>(l2_.size()); }
  int num_l3_instances() const { return static_cast<int>(l3_.size()); }

  /// Instance index of the cache serving `cpu` at `level` (1..3); -1 if the
  /// machine has no such level. Exposed for tests.
  int instance_of(int cpu, int level) const;

  std::uint32_t line_size() const noexcept { return line_size_; }

 private:
  struct StreamDetector {
    std::uint64_t last_miss_line = ~std::uint64_t{0};
    int run_length = 0;
  };

  SetAssociativeCache* l1_of(int cpu);
  SetAssociativeCache* l2_of(int cpu);
  SetAssociativeCache* l3_of_socket(int socket);

  void access_line(int cpu, std::uint64_t line, AccessKind kind);
  /// Demand miss resolution below L1; returns nothing, updates counters.
  void fill_from_below(int cpu, std::uint64_t line, bool count_demand);
  /// Resolve a line into the given socket's L3 (local hit / remote / mem).
  void resolve_into_l3(int cpu, int socket, std::uint64_t line,
                       bool count_demand);
  void install_l1(int cpu, std::uint64_t line, bool dirty);
  void install_l2(int cpu, std::uint64_t line, bool dirty, bool is_fill);
  void install_l3(int cpu, int socket, std::uint64_t line, bool dirty);
  /// Shared victim handling of an L2 allocation (writeback cascade).
  void handle_l2_eviction(int cpu, const SetAssociativeCache::Eviction& ev);
  /// Shared victim handling of an L3 allocation (lines_out accounting,
  /// inclusive back-invalidation, dirty writeback to memory).
  void handle_l3_eviction(int cpu, int socket,
                          const SetAssociativeCache::Eviction& ev);
  void writeback_from_l1(int cpu, std::uint64_t line);
  void writeback_from_l2(int cpu, std::uint64_t line);
  void run_prefetchers(int cpu, std::uint64_t miss_line);
  void prefetch_into_l1(int cpu, std::uint64_t line);
  void prefetch_into_l2(int cpu, std::uint64_t line);
  void touch_tlb(int cpu, std::uint64_t addr);

  const hwsim::MachineSpec& spec_;
  const std::vector<hwsim::HwThread>& threads_;
  std::uint32_t line_size_ = 64;
  unsigned line_shift_ = 6;
  bool has_l2_ = false;
  bool has_l3_ = false;

  // cpu -> instance index per level.
  std::vector<int> l1_index_;
  std::vector<int> l2_index_;
  std::vector<std::unique_ptr<SetAssociativeCache>> l1_;
  std::vector<std::unique_ptr<SetAssociativeCache>> l2_;
  std::vector<std::unique_ptr<SetAssociativeCache>> l3_;  // one per socket

  std::vector<CpuTraffic> cpu_traffic_;
  std::vector<SocketTraffic> socket_traffic_;
  std::vector<StreamDetector> detectors_;
  std::vector<hwsim::PrefetcherSpec> active_prefetch_;

  // Simple fully-associative LRU data TLBs, one per hardware thread.
  struct TlbEntry {
    std::uint64_t page = ~std::uint64_t{0};
    std::uint64_t stamp = 0;
  };
  std::vector<std::vector<TlbEntry>> tlbs_;
  std::vector<std::uint64_t> tlb_last_page_;  ///< fast path per cpu
  std::uint64_t tlb_clock_ = 0;
  unsigned page_shift_ = 12;
};

}  // namespace likwid::cachesim
