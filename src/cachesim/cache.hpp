// cache.hpp — a single set-associative, write-back cache with true-LRU
// replacement, operating on line addresses (byte address >> log2(line)).
//
// The cache is policy-free: it answers hit/miss, installs lines and reports
// victims. The surrounding CacheHierarchy implements multi-level fill,
// write-allocate, writeback cascades, inclusive back-invalidation and
// nontemporal stores on top of it.
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.hpp"

namespace likwid::cachesim {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t associativity = 8;
  std::uint32_t line_size = 64;
  bool inclusive = false;
};

class SetAssociativeCache {
 public:
  explicit SetAssociativeCache(const CacheConfig& config);

  /// Result of inserting a line: the displaced victim, if any.
  struct Eviction {
    std::uint64_t line_addr = 0;
    bool valid = false;  ///< a line was displaced
    bool dirty = false;  ///< ... and it was modified
  };

  /// Result of removing a line.
  struct InvalidateResult {
    bool was_present = false;
    bool was_dirty = false;
  };

  /// Look up `line_addr`; updates LRU on hit and optionally marks the line
  /// dirty. Returns true on hit.
  bool lookup(std::uint64_t line_addr, bool mark_dirty);

  /// Install a line known to be absent (callers look up first); returns the
  /// evicted victim. Throws Error(kInvalidState) if the line is present.
  Eviction insert(std::uint64_t line_addr, bool dirty);

  /// Result of a fused probe: whether the line was already resident, and
  /// the displaced victim when it was not.
  struct ProbeResult {
    bool hit = false;
    Eviction eviction;  ///< valid only when !hit
  };

  /// lookup() and insert() fused into one associative-way walk: on hit the
  /// line's LRU stamp refreshes (and `mark_dirty` applies), on miss the
  /// line is installed with `insert_dirty`, displacing the same victim the
  /// separate walks would have picked. For the miss paths this halves the
  /// set scans per access.
  ProbeResult probe_or_insert(std::uint64_t line_addr, bool mark_dirty,
                              bool insert_dirty);

  /// True if the line is resident (no LRU update).
  bool contains(std::uint64_t line_addr) const noexcept;

  /// Remove the line if present.
  InvalidateResult invalidate(std::uint64_t line_addr);

  /// Drop all contents (between benchmark repetitions).
  void flush();

  std::uint32_t num_sets() const noexcept { return num_sets_; }
  std::uint32_t associativity() const noexcept { return assoc_; }
  std::uint32_t line_size() const noexcept { return config_.line_size; }
  std::uint64_t size_bytes() const noexcept { return config_.size_bytes; }
  bool inclusive() const noexcept { return config_.inclusive; }

  /// Number of resident lines (O(capacity); for tests).
  std::size_t occupancy() const noexcept;

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t stamp = 0;
    bool valid = false;
    bool dirty = false;
  };

  Way* set_begin(std::uint64_t line_addr) noexcept {
    return ways_.data() + (line_addr % num_sets_) * assoc_;
  }
  const Way* set_begin(std::uint64_t line_addr) const noexcept {
    return ways_.data() + (line_addr % num_sets_) * assoc_;
  }

  CacheConfig config_;
  std::uint32_t num_sets_ = 0;
  std::uint32_t assoc_ = 0;
  std::uint64_t clock_ = 0;
  std::vector<Way> ways_;
};

}  // namespace likwid::cachesim
