#include "cachesim/cache.hpp"

#include "util/bitops.hpp"

namespace likwid::cachesim {

SetAssociativeCache::SetAssociativeCache(const CacheConfig& config)
    : config_(config) {
  LIKWID_REQUIRE(config.size_bytes > 0 && config.associativity > 0 &&
                     config.line_size > 0,
                 "cache with zero geometry");
  LIKWID_REQUIRE(util::is_pow2(config.line_size),
                 "line size must be a power of two");
  LIKWID_REQUIRE(
      config.size_bytes % (config.associativity * config.line_size) == 0,
      "cache size not divisible into sets");
  num_sets_ = static_cast<std::uint32_t>(
      config.size_bytes / (config.associativity * config.line_size));
  assoc_ = config.associativity;
  ways_.resize(static_cast<std::size_t>(num_sets_) * assoc_);
}

bool SetAssociativeCache::lookup(std::uint64_t line_addr, bool mark_dirty) {
  Way* set = set_begin(line_addr);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == line_addr) {
      set[w].stamp = ++clock_;
      if (mark_dirty) set[w].dirty = true;
      return true;
    }
  }
  return false;
}

SetAssociativeCache::Eviction SetAssociativeCache::insert(
    std::uint64_t line_addr, bool dirty) {
  Way* set = set_begin(line_addr);
  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (!set[w].valid) {
      victim = &set[w];
      break;
    }
    LIKWID_REQUIRE(set[w].tag != line_addr,
                   "insert of a line that is already resident");
    if (victim == nullptr || set[w].stamp < victim->stamp) victim = &set[w];
  }
  Eviction ev;
  if (victim->valid) {
    ev.valid = true;
    ev.line_addr = victim->tag;
    ev.dirty = victim->dirty;
  }
  victim->tag = line_addr;
  victim->stamp = ++clock_;
  victim->valid = true;
  victim->dirty = dirty;
  return ev;
}

SetAssociativeCache::ProbeResult SetAssociativeCache::probe_or_insert(
    std::uint64_t line_addr, bool mark_dirty, bool insert_dirty) {
  Way* set = set_begin(line_addr);
  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == line_addr) {
      set[w].stamp = ++clock_;
      if (mark_dirty) set[w].dirty = true;
      return {true, {}};
    }
    if (!set[w].valid) {
      // Free way: remember the first one, like insert() does, but keep
      // scanning — the line could still live in a later way.
      if (victim == nullptr || victim->valid) victim = &set[w];
      continue;
    }
    if (victim == nullptr ||
        (victim->valid && set[w].stamp < victim->stamp)) {
      victim = &set[w];
    }
  }
  ProbeResult r;
  if (victim->valid) {
    r.eviction.valid = true;
    r.eviction.line_addr = victim->tag;
    r.eviction.dirty = victim->dirty;
  }
  victim->tag = line_addr;
  victim->stamp = ++clock_;
  victim->valid = true;
  victim->dirty = insert_dirty;
  return r;
}

bool SetAssociativeCache::contains(std::uint64_t line_addr) const noexcept {
  const Way* set = set_begin(line_addr);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == line_addr) return true;
  }
  return false;
}

SetAssociativeCache::InvalidateResult SetAssociativeCache::invalidate(
    std::uint64_t line_addr) {
  Way* set = set_begin(line_addr);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == line_addr) {
      InvalidateResult r{true, set[w].dirty};
      set[w].valid = false;
      set[w].dirty = false;
      return r;
    }
  }
  return {false, false};
}

void SetAssociativeCache::flush() {
  for (auto& w : ways_) {
    w.valid = false;
    w.dirty = false;
  }
  clock_ = 0;
}

std::size_t SetAssociativeCache::occupancy() const noexcept {
  std::size_t n = 0;
  for (const auto& w : ways_) {
    if (w.valid) ++n;
  }
  return n;
}

}  // namespace likwid::cachesim
