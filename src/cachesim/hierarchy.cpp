#include "cachesim/hierarchy.hpp"

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace likwid::cachesim {

using hwsim::EventId;
using hwsim::EventVector;

namespace {

CacheConfig to_config(const hwsim::CacheLevelSpec& c) {
  CacheConfig cfg;
  cfg.size_bytes = c.size_bytes;
  cfg.associativity = c.associativity;
  cfg.line_size = c.line_size;
  cfg.inclusive = c.inclusive;
  return cfg;
}

}  // namespace

CacheHierarchy::CacheHierarchy(const hwsim::MachineSpec& spec,
                               const std::vector<hwsim::HwThread>& threads)
    : spec_(spec), threads_(threads) {
  const int n = spec.num_hw_threads();
  LIKWID_REQUIRE(static_cast<int>(threads.size()) == n,
                 "thread enumeration does not match spec");

  const auto& l1spec = spec.data_cache(1);
  line_size_ = l1spec.line_size;
  line_shift_ = util::log2_exact(line_size_);
  page_shift_ = util::log2_exact(spec.tlb.page_size);

  // Instance mapping: the shared_by_threads hardware threads that share a
  // cache are the SMT siblings of a run of consecutive cores in a socket.
  const auto build_level = [&](const hwsim::CacheLevelSpec& cs,
                               std::vector<int>& index,
                               std::vector<std::unique_ptr<SetAssociativeCache>>&
                                   caches) {
    const int cores_per_instance = static_cast<int>(cs.shared_by_threads) /
                                   spec.threads_per_core;
    const int instances_per_socket =
        spec.cores_per_socket / std::max(1, cores_per_instance);
    index.assign(static_cast<std::size_t>(n), -1);
    caches.clear();
    for (int s = 0; s < spec.sockets; ++s) {
      for (int i = 0; i < instances_per_socket; ++i) {
        caches.push_back(
            std::make_unique<SetAssociativeCache>(to_config(cs)));
      }
    }
    for (const auto& t : threads_) {
      const int inst = t.socket * instances_per_socket +
                       t.core_index / std::max(1, cores_per_instance);
      index[static_cast<std::size_t>(t.os_id)] = inst;
    }
  };

  build_level(l1spec, l1_index_, l1_);
  has_l2_ = spec.has_data_cache(2);
  if (has_l2_) build_level(spec.data_cache(2), l2_index_, l2_);
  has_l3_ = spec.has_data_cache(3);
  if (has_l3_) {
    const auto& l3spec = spec.data_cache(3);
    LIKWID_REQUIRE(static_cast<int>(l3spec.shared_by_threads) ==
                       spec.cores_per_socket * spec.threads_per_core,
                   "model requires socket-wide L3");
    for (int s = 0; s < spec.sockets; ++s) {
      l3_.push_back(std::make_unique<SetAssociativeCache>(to_config(l3spec)));
    }
  }

  cpu_traffic_.resize(static_cast<std::size_t>(n));
  socket_traffic_.resize(static_cast<std::size_t>(spec.sockets));
  detectors_.resize(static_cast<std::size_t>(n));
  active_prefetch_.assign(static_cast<std::size_t>(n), spec.prefetchers);
  tlbs_.resize(static_cast<std::size_t>(n));
  for (auto& tlb : tlbs_) tlb.resize(spec.tlb.entries);
  tlb_last_page_.assign(static_cast<std::size_t>(n), ~std::uint64_t{0});
}

SetAssociativeCache* CacheHierarchy::l1_of(int cpu) {
  return l1_[static_cast<std::size_t>(
                 l1_index_[static_cast<std::size_t>(cpu)])]
      .get();
}

SetAssociativeCache* CacheHierarchy::l2_of(int cpu) {
  return has_l2_ ? l2_[static_cast<std::size_t>(
                           l2_index_[static_cast<std::size_t>(cpu)])]
                       .get()
                 : nullptr;
}

SetAssociativeCache* CacheHierarchy::l3_of_socket(int socket) {
  return has_l3_ ? l3_[static_cast<std::size_t>(socket)].get() : nullptr;
}

int CacheHierarchy::instance_of(int cpu, int level) const {
  LIKWID_REQUIRE(cpu >= 0 && cpu < static_cast<int>(cpu_traffic_.size()),
                 "cpu out of range");
  switch (level) {
    case 1: return l1_index_[static_cast<std::size_t>(cpu)];
    case 2:
      return has_l2_ ? l2_index_[static_cast<std::size_t>(cpu)] : -1;
    case 3:
      return has_l3_ ? threads_[static_cast<std::size_t>(cpu)].socket : -1;
    default:
      throw_error(ErrorCode::kInvalidArgument, "cache level must be 1..3");
  }
}

void CacheHierarchy::set_prefetchers(int cpu,
                                     const hwsim::PrefetcherSpec& active) {
  LIKWID_REQUIRE(cpu >= 0 && cpu < static_cast<int>(active_prefetch_.size()),
                 "cpu out of range");
  active_prefetch_[static_cast<std::size_t>(cpu)] = active;
}

void CacheHierarchy::access(int cpu, std::uint64_t addr, std::uint64_t bytes,
                            AccessKind kind) {
  LIKWID_REQUIRE(cpu >= 0 && cpu < static_cast<int>(cpu_traffic_.size()),
                 "cpu out of range");
  LIKWID_REQUIRE(bytes > 0, "zero-length access");
  const std::uint64_t first = addr >> line_shift_;
  const std::uint64_t last = (addr + bytes - 1) >> line_shift_;
  for (std::uint64_t line = first; line <= last; ++line) {
    touch_tlb(cpu, line << line_shift_);
    access_line(cpu, line, kind);
  }
}

void CacheHierarchy::touch_tlb(int cpu, std::uint64_t addr) {
  const std::uint64_t page = addr >> page_shift_;
  // Fast path: consecutive accesses to the same page (the common case for
  // streaming kernels) skip the associative TLB scan entirely.
  if (page == tlb_last_page_[static_cast<std::size_t>(cpu)]) return;
  tlb_last_page_[static_cast<std::size_t>(cpu)] = page;
  auto& tlb = tlbs_[static_cast<std::size_t>(cpu)];
  TlbEntry* victim = &tlb[0];
  for (auto& e : tlb) {
    if (e.page == page) {
      e.stamp = ++tlb_clock_;
      return;
    }
    if (e.stamp < victim->stamp) victim = &e;
  }
  cpu_traffic_[static_cast<std::size_t>(cpu)].dtlb_misses += 1;
  victim->page = page;
  victim->stamp = ++tlb_clock_;
}

void CacheHierarchy::access_line(int cpu, std::uint64_t line,
                                 AccessKind kind) {
  CpuTraffic& t = cpu_traffic_[static_cast<std::size_t>(cpu)];
  const int socket = threads_[static_cast<std::size_t>(cpu)].socket;

  if (kind == AccessKind::kStoreNonTemporal) {
    t.stores += 1;
    t.nt_store_lines += 1;
    // Streaming stores bypass and invalidate all cached copies, then write
    // the full line to memory through the write-combining buffers. Each
    // socket's L3 acts as the snoop filter for its inner caches.
    for (int s = 0; s < spec_.sockets; ++s) {
      if (!has_l3_) break;
      if (!l3_of_socket(s)->invalidate(line).was_present && s != socket) {
        continue;  // remote socket never owned the line
      }
      for (const auto& th : threads_) {
        if (th.socket != s || th.smt != 0) continue;
        l1_[static_cast<std::size_t>(
                l1_index_[static_cast<std::size_t>(th.os_id)])]
            ->invalidate(line);
        if (has_l2_) {
          l2_[static_cast<std::size_t>(
                  l2_index_[static_cast<std::size_t>(th.os_id)])]
              ->invalidate(line);
        }
      }
    }
    if (!has_l3_) {
      for (auto& c : l1_) c->invalidate(line);
      for (auto& c : l2_) c->invalidate(line);
    }
    t.mem_lines_written += 1;
    socket_traffic_[static_cast<std::size_t>(socket)].mem_writes += 1;
    return;
  }

  const bool is_store = kind == AccessKind::kStore;
  (is_store ? t.stores : t.loads) += 1;

  if (l1_of(cpu)->lookup(line, is_store)) {
    t.l1_hits += 1;
    return;
  }
  fill_from_below(cpu, line, /*count_demand=*/true);
  install_l1(cpu, line, is_store);
  run_prefetchers(cpu, line);
}

void CacheHierarchy::fill_from_below(int cpu, std::uint64_t line,
                                     bool count_demand) {
  CpuTraffic& t = cpu_traffic_[static_cast<std::size_t>(cpu)];
  const int socket = threads_[static_cast<std::size_t>(cpu)].socket;

  if (has_l2_) {
    // Demand probes stay separate from the allocation (unlike the fused
    // writeback paths): the install must run after the lower levels
    // resolved, or an inclusive-L3 back-invalidation in between could pick
    // a different victim than real fill ordering would.
    if (count_demand) t.l2_requests += 1;
    if (l2_of(cpu)->lookup(line, false)) {
      if (count_demand) t.l2_hits += 1;
      return;
    }
    if (count_demand) t.l2_misses += 1;
    resolve_into_l3(cpu, socket, line, count_demand);
    install_l2(cpu, line, /*dirty=*/false, /*is_fill=*/true);
    return;
  }
  resolve_into_l3(cpu, socket, line, count_demand);
}

void CacheHierarchy::resolve_into_l3(int cpu, int socket, std::uint64_t line,
                                     bool count_demand) {
  CpuTraffic& t = cpu_traffic_[static_cast<std::size_t>(cpu)];
  SocketTraffic& st = socket_traffic_[static_cast<std::size_t>(socket)];

  if (!has_l3_) {
    // No L3: the line comes straight from memory.
    t.mem_lines_read += 1;
    st.mem_reads += 1;
    (void)count_demand;
    return;
  }

  SetAssociativeCache* l3 = l3_of_socket(socket);
  if (l3->lookup(line, false)) {
    if (count_demand) t.l3_hits += 1;
    st.l3_hits += 1;
    return;
  }
  st.l3_misses += 1;

  // Remote-socket snoop: migrate the line if another socket caches it.
  // Fast path: the snoop filter is the remote L3 — only when it holds the
  // line are the remote inner caches purged (non-inclusive L3s can in
  // principle hold inner-only lines, but every fill in this model passes
  // through the L3, so an L3 miss implies the socket does not own it).
  bool migrated = false;
  bool migrated_dirty = false;
  for (int rs = 0; rs < spec_.sockets && !migrated; ++rs) {
    if (rs == socket) continue;
    SetAssociativeCache* remote = l3_of_socket(rs);
    if (!remote->contains(line)) continue;
    const auto l3_inv = remote->invalidate(line);
    bool inner_dirty = false;
    for (const auto& th : threads_) {
      if (th.socket != rs) continue;
      if (th.smt != 0) continue;  // instances are shared; one visit enough
      const auto r1 = l1_[static_cast<std::size_t>(
                              l1_index_[static_cast<std::size_t>(th.os_id)])]
                          ->invalidate(line);
      inner_dirty = inner_dirty || r1.was_dirty;
      if (has_l2_) {
        const auto r2 =
            l2_[static_cast<std::size_t>(
                    l2_index_[static_cast<std::size_t>(th.os_id)])]
                ->invalidate(line);
        inner_dirty = inner_dirty || r2.was_dirty;
      }
    }
    migrated = true;
    migrated_dirty = l3_inv.was_dirty || inner_dirty;
    socket_traffic_[static_cast<std::size_t>(rs)].l3_lines_out += 1;
    t.remote_l3_hits += 1;
  }

  if (!migrated) {
    t.mem_lines_read += 1;
    st.mem_reads += 1;
  }
  install_l3(cpu, socket, line, migrated_dirty);
}

void CacheHierarchy::install_l1(int cpu, std::uint64_t line, bool dirty) {
  CpuTraffic& t = cpu_traffic_[static_cast<std::size_t>(cpu)];
  const auto ev = l1_of(cpu)->insert(line, dirty);
  t.l1_fills += 1;
  if (ev.valid && ev.dirty) {
    t.l1_writebacks += 1;
    writeback_from_l1(cpu, ev.line_addr);
  }
}

void CacheHierarchy::handle_l2_eviction(
    int cpu, const SetAssociativeCache::Eviction& ev) {
  if (ev.valid && ev.dirty) {
    cpu_traffic_[static_cast<std::size_t>(cpu)].l2_writebacks += 1;
    writeback_from_l2(cpu, ev.line_addr);
  }
}

void CacheHierarchy::install_l2(int cpu, std::uint64_t line, bool dirty,
                                bool is_fill) {
  if (!has_l2_) return;
  const auto ev = l2_of(cpu)->insert(line, dirty);
  if (is_fill) cpu_traffic_[static_cast<std::size_t>(cpu)].l2_fills += 1;
  handle_l2_eviction(cpu, ev);
}

void CacheHierarchy::handle_l3_eviction(
    int cpu, int socket, const SetAssociativeCache::Eviction& ev) {
  if (!ev.valid) return;
  SocketTraffic& st = socket_traffic_[static_cast<std::size_t>(socket)];
  st.l3_lines_out += 1;
  bool victim_dirty = ev.dirty;
  if (l3_of_socket(socket)->inclusive()) {
    // Inclusive LLC: evicting a line expels it from the inner caches of
    // every core on this socket.
    for (const auto& th : threads_) {
      if (th.socket != socket || th.smt != 0) continue;
      const auto r1 =
          l1_[static_cast<std::size_t>(
                  l1_index_[static_cast<std::size_t>(th.os_id)])]
              ->invalidate(ev.line_addr);
      victim_dirty = victim_dirty || r1.was_dirty;
      if (has_l2_) {
        const auto r2 =
            l2_[static_cast<std::size_t>(
                    l2_index_[static_cast<std::size_t>(th.os_id)])]
                ->invalidate(ev.line_addr);
        victim_dirty = victim_dirty || r2.was_dirty;
      }
    }
  }
  if (victim_dirty) {
    cpu_traffic_[static_cast<std::size_t>(cpu)].mem_lines_written += 1;
    st.mem_writes += 1;
  }
}

void CacheHierarchy::install_l3(int cpu, int socket, std::uint64_t line,
                                bool dirty) {
  if (!has_l3_) {
    if (dirty) {
      cpu_traffic_[static_cast<std::size_t>(cpu)].mem_lines_written += 1;
      socket_traffic_[static_cast<std::size_t>(socket)].mem_writes += 1;
    }
    return;
  }
  const auto ev = l3_of_socket(socket)->insert(line, dirty);
  socket_traffic_[static_cast<std::size_t>(socket)].l3_lines_in += 1;
  handle_l3_eviction(cpu, socket, ev);
}

void CacheHierarchy::writeback_from_l1(int cpu, std::uint64_t line) {
  // Dirty L1 victim: merge into L2 if resident, else allocate there. One
  // fused set walk serves both the probe and the allocation.
  if (has_l2_) {
    const auto r = l2_of(cpu)->probe_or_insert(line, /*mark_dirty=*/true,
                                               /*insert_dirty=*/true);
    if (!r.hit) handle_l2_eviction(cpu, r.eviction);
    return;
  }
  writeback_from_l2(cpu, line);  // no L2: falls through to L3/memory
}

void CacheHierarchy::writeback_from_l2(int cpu, std::uint64_t line) {
  const int socket = threads_[static_cast<std::size_t>(cpu)].socket;
  if (has_l3_) {
    const auto r = l3_of_socket(socket)->probe_or_insert(
        line, /*mark_dirty=*/true, /*insert_dirty=*/true);
    if (!r.hit) {
      socket_traffic_[static_cast<std::size_t>(socket)].l3_lines_in += 1;
      handle_l3_eviction(cpu, socket, r.eviction);
    }
    return;
  }
  cpu_traffic_[static_cast<std::size_t>(cpu)].mem_lines_written += 1;
  socket_traffic_[static_cast<std::size_t>(socket)].mem_writes += 1;
}

void CacheHierarchy::run_prefetchers(int cpu, std::uint64_t miss_line) {
  auto& det = detectors_[static_cast<std::size_t>(cpu)];
  if (miss_line == det.last_miss_line + 1) {
    det.run_length += 1;
  } else if (miss_line != det.last_miss_line) {
    det.run_length = 1;
  }
  det.last_miss_line = miss_line;

  const auto& pf = active_prefetch_[static_cast<std::size_t>(cpu)];
  if (det.run_length >= 2) {
    if (pf.dcu_prefetcher || pf.ip_prefetcher) prefetch_into_l1(cpu, miss_line + 1);
    if (pf.hardware_prefetcher) prefetch_into_l2(cpu, miss_line + 2);
  }
  if (pf.adjacent_line) prefetch_into_l2(cpu, miss_line ^ 1);
}

void CacheHierarchy::prefetch_into_l1(int cpu, std::uint64_t line) {
  if (l1_of(cpu)->lookup(line, false)) return;
  CpuTraffic& t = cpu_traffic_[static_cast<std::size_t>(cpu)];
  t.prefetches_issued += 1;
  fill_from_below(cpu, line, /*count_demand=*/false);
  install_l1(cpu, line, /*dirty=*/false);
}

void CacheHierarchy::prefetch_into_l2(int cpu, std::uint64_t line) {
  if (!has_l2_) return;
  if (l2_of(cpu)->lookup(line, false)) return;
  if (l1_of(cpu)->contains(line)) return;
  CpuTraffic& t = cpu_traffic_[static_cast<std::size_t>(cpu)];
  t.prefetches_issued += 1;
  const int socket = threads_[static_cast<std::size_t>(cpu)].socket;
  resolve_into_l3(cpu, socket, line, /*count_demand=*/false);
  install_l2(cpu, line, /*dirty=*/false, /*is_fill=*/true);
}

void CacheHierarchy::flush() {
  for (auto& c : l1_) c->flush();
  for (auto& c : l2_) c->flush();
  for (auto& c : l3_) c->flush();
  for (auto& tlb : tlbs_) {
    for (auto& e : tlb) e = TlbEntry{};
  }
  for (auto& p : tlb_last_page_) p = ~std::uint64_t{0};
  for (auto& d : detectors_) d = StreamDetector{};
}

void CacheHierarchy::reset_counters() {
  for (auto& t : cpu_traffic_) t = CpuTraffic{};
  for (auto& s : socket_traffic_) s = SocketTraffic{};
}

const CpuTraffic& CacheHierarchy::cpu_traffic(int cpu) const {
  LIKWID_REQUIRE(cpu >= 0 && cpu < static_cast<int>(cpu_traffic_.size()),
                 "cpu out of range");
  return cpu_traffic_[static_cast<std::size_t>(cpu)];
}

const SocketTraffic& CacheHierarchy::socket_traffic(int socket) const {
  LIKWID_REQUIRE(socket >= 0 &&
                     socket < static_cast<int>(socket_traffic_.size()),
                 "socket out of range");
  return socket_traffic_[static_cast<std::size_t>(socket)];
}

hwsim::EventVector CacheHierarchy::core_cache_events(int cpu) const {
  const CpuTraffic& t = cpu_traffic(cpu);
  EventVector ev;
  ev[EventId::kL1DLinesIn] = t.l1_fills;
  ev[EventId::kL1DLinesOut] = t.l1_writebacks;
  ev[EventId::kL2Requests] = t.l2_requests;
  ev[EventId::kL2Misses] = t.l2_misses;
  ev[EventId::kL2LinesIn] = t.l2_fills;
  ev[EventId::kL2LinesOut] = t.l2_writebacks;
  ev[EventId::kHwPrefetchesIssued] = t.prefetches_issued;
  ev[EventId::kBusTransMem] = t.mem_lines_read + t.mem_lines_written;
  ev[EventId::kDtlbMisses] = t.dtlb_misses;
  return ev;
}

hwsim::EventVector CacheHierarchy::uncore_cache_events(int socket) const {
  const SocketTraffic& s = socket_traffic(socket);
  EventVector ev;
  ev[EventId::kUncL3LinesIn] = s.l3_lines_in;
  ev[EventId::kUncL3LinesOut] = s.l3_lines_out;
  ev[EventId::kUncL3Hits] = s.l3_hits;
  ev[EventId::kUncL3Misses] = s.l3_misses;
  ev[EventId::kUncMemReads] = s.mem_reads;
  ev[EventId::kUncMemWrites] = s.mem_writes;
  return ev;
}

}  // namespace likwid::cachesim
