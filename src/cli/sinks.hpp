// sinks.hpp — the suite's built-in OutputSink implementations.
//
// The three Section II/V output formats of the tools, expressed as
// pluggable sinks over the format-neutral ResultTable model: the paper's
// ASCII tables, the CSV extension and the Section V XML output. The
// legacy free functions (render_measurement, csv_measurement,
// xml_measurement, ...) remain as thin wrappers that build the table from
// a PerfCtr and hand it to the matching sink.
#pragma once

#include <memory>

#include "api/output_sink.hpp"
#include "util/status.hpp"

namespace likwid::cli {

/// The paper's '+--+' ASCII tables. series() falls back to the CSV series
/// layout (the tools never grew an ASCII series format).
class AsciiSink : public api::OutputSink {
 public:
  std::string measurement(const api::ResultTable& table) const override;
  std::string regions(const api::RegionReport& report) const override;
  std::string series(
      const std::vector<monitor::SeriesPoint>& points) const override;
};

/// RFC 4180 CSV with uppercase section tag rows.
class CsvSink : public api::OutputSink {
 public:
  std::string measurement(const api::ResultTable& table) const override;
  std::string regions(const api::RegionReport& report) const override;
  std::string series(
      const std::vector<monitor::SeriesPoint>& points) const override;
};

/// The Section V XML output.
class XmlSink : public api::OutputSink {
 public:
  std::string measurement(const api::ResultTable& table) const override;
  std::string regions(const api::RegionReport& report) const override;
  std::string series(
      const std::vector<monitor::SeriesPoint>& points) const override;
};

enum class SinkFormat { kText, kCsv, kXml };

inline std::unique_ptr<api::OutputSink> make_sink(SinkFormat format) {
  switch (format) {
    case SinkFormat::kText: return std::make_unique<AsciiSink>();
    case SinkFormat::kCsv: return std::make_unique<CsvSink>();
    case SinkFormat::kXml: return std::make_unique<XmlSink>();
  }
  throw_error(ErrorCode::kInvalidArgument, "unknown sink format");
}

}  // namespace likwid::cli
