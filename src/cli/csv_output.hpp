// csv_output.hpp — CSV rendering of tool results.
//
// Companion to the XML output of Section V: where XML serves structured
// tooling, CSV serves spreadsheets and plotting scripts. The tools expose
// it through `--csv` and through `-o FILE.csv` (format chosen by file
// extension, the convention the real tool suite later adopted).
//
// Layout: one section per logical table. Sections start with an uppercase
// tag row (`GROUP,<name>` / `REGION,<name>` / `TABLE,<what>`), followed by
// a header row and data rows. Fields containing commas, quotes or
// newlines are quoted per RFC 4180.
#pragma once

#include <string>

#include "core/marker.hpp"
#include "core/perfctr.hpp"
#include "core/topology.hpp"

namespace likwid::cli {

/// Quote a field per RFC 4180 when it contains a comma, quote or newline.
std::string csv_escape(std::string_view field);

/// GROUP section with the event table and, for group sets, the derived
/// metrics — the CSV twin of render_measurement().
std::string csv_measurement(const core::PerfCtr& ctr, int set);

/// One REGION section per marker region — the CSV twin of
/// render_regions().
std::string csv_regions(const core::PerfCtr& ctr, int set,
                        const core::MarkerSession& session);

/// Thread and cache topology tables — the CSV twin of
/// render_topology_report().
std::string csv_topology(const core::NodeTopology& topo);

}  // namespace likwid::cli
