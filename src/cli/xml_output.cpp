#include "cli/xml_output.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace likwid::cli {

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

std::string attr(const std::string& name, const std::string& value) {
  return " " + name + "=\"" + xml_escape(value) + "\"";
}

std::string attr(const std::string& name, double value) {
  return attr(name, util::format_metric(value));
}

std::string attr(const std::string& name, int value) {
  return attr(name, std::to_string(value));
}

}  // namespace

std::string xml_topology(const core::NodeTopology& topo) {
  std::ostringstream out;
  out << "<node" << attr("cpuName", topo.cpu_name)
      << attr("clockGHz", topo.clock_ghz)
      << attr("sockets", topo.num_sockets)
      << attr("coresPerSocket", topo.num_cores_per_socket)
      << attr("threadsPerCore", topo.num_threads_per_core) << ">\n";
  out << "  <hwThreads>\n";
  for (const auto& t : topo.threads) {
    out << "    <hwThread" << attr("id", t.os_id)
        << attr("thread", t.thread_id) << attr("core", t.core_id)
        << attr("socket", t.socket_id)
        << attr("apicId", static_cast<int>(t.apic_id)) << "/>\n";
  }
  out << "  </hwThreads>\n";
  out << "  <caches>\n";
  for (const auto& c : topo.caches) {
    out << "    <cache" << attr("level", c.level)
        << attr("type", std::string(hwsim::to_string(c.type)))
        << attr("sizeBytes", static_cast<int>(c.size_bytes))
        << attr("associativity", static_cast<int>(c.associativity))
        << attr("lineSize", static_cast<int>(c.line_size))
        << attr("sets", static_cast<int>(c.num_sets))
        << attr("inclusive", c.inclusive ? "true" : "false")
        << attr("threadsSharing", c.threads_sharing) << ">\n";
    for (const auto& group : c.groups) {
      out << "      <group>";
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (i > 0) out << " ";
        out << group[i];
      }
      out << "</group>\n";
    }
    out << "    </cache>\n";
  }
  out << "  </caches>\n";
  out << "</node>\n";
  return out.str();
}

std::string xml_numa(const core::NumaTopology& numa) {
  std::ostringstream out;
  out << "<numa" << attr("domains", numa.num_domains()) << ">\n";
  for (const auto& d : numa.domains) {
    out << "  <domain" << attr("id", d.id)
        << attr("memoryTotalGB", d.memory_total_gb)
        << attr("memoryFreeGB", d.memory_free_gb) << ">\n";
    out << "    <processors>";
    for (std::size_t i = 0; i < d.processors.size(); ++i) {
      if (i > 0) out << " ";
      out << d.processors[i];
    }
    out << "</processors>\n";
    out << "    <distances>";
    for (std::size_t i = 0; i < d.distances.size(); ++i) {
      if (i > 0) out << " ";
      out << d.distances[i];
    }
    out << "</distances>\n";
    out << "  </domain>\n";
  }
  out << "</numa>\n";
  return out.str();
}

namespace {

void xml_counts(std::ostringstream& out, const core::PerfCtr& ctr, int set,
                const std::map<int, std::map<std::string, double>>& counts,
                const std::string& indent) {
  for (const int cpu : ctr.cpus()) {
    out << indent << "<cpu" << attr("id", cpu) << ">\n";
    for (const auto& a : ctr.assignments_of(set)) {
      double value = 0;
      const auto it = counts.find(cpu);
      if (it != counts.end()) {
        const auto ev = it->second.find(a.event_name);
        if (ev != it->second.end()) value = ev->second;
      }
      out << indent << "  <event" << attr("name", a.event_name)
          << attr("counter", a.counter_name) << attr("count", value)
          << "/>\n";
    }
    out << indent << "</cpu>\n";
  }
}

void xml_metrics(std::ostringstream& out,
                 const std::vector<core::PerfCtr::MetricRow>& rows,
                 const std::string& indent) {
  for (const auto& row : rows) {
    out << indent << "<metric" << attr("name", row.name) << ">\n";
    for (const auto& [cpu, value] : row.per_cpu) {
      out << indent << "  <value" << attr("cpu", cpu)
          << attr("v", value) << "/>\n";
    }
    out << indent << "</metric>\n";
  }
}

}  // namespace

std::string xml_measurement(const core::PerfCtr& ctr, int set) {
  std::ostringstream out;
  const auto& group = ctr.group_of(set);
  out << "<measurement"
      << attr("group", group ? group->name : std::string("custom"))
      << attr("seconds", ctr.results(set).measured_seconds) << ">\n";
  std::map<int, std::map<std::string, double>> counts;
  for (const int cpu : ctr.cpus()) {
    for (const auto& a : ctr.assignments_of(set)) {
      counts[cpu][a.event_name] =
          ctr.extrapolated_count(set, cpu, a.event_name);
    }
  }
  xml_counts(out, ctr, set, counts, "  ");
  if (group) {
    xml_metrics(out, ctr.compute_metrics(set), "  ");
  }
  out << "</measurement>\n";
  return out.str();
}

std::string xml_regions(const core::PerfCtr& ctr, int set,
                        const core::MarkerSession& session) {
  std::ostringstream out;
  out << "<regions>\n";
  for (const auto& region : session.regions()) {
    out << "  <region" << attr("name", region.name)
        << attr("calls", region.call_count) << ">\n";
    xml_counts(out, ctr, set, region.counts, "    ");
    if (ctr.group_of(set)) {
      double wall = 0;
      for (const auto& [cpu, seconds] : region.seconds) {
        wall = std::max(wall, seconds);
      }
      xml_metrics(out, ctr.compute_metrics_for(set, region.counts, wall),
                  "    ");
    }
    out << "  </region>\n";
  }
  out << "</regions>\n";
  return out.str();
}

std::string xml_features(const core::NodeTopology& topo, int cpu,
                         const std::vector<core::FeatureState>& states) {
  std::ostringstream out;
  out << "<features" << attr("cpuName", topo.cpu_name) << attr("cpu", cpu)
      << ">\n";
  for (const auto& s : states) {
    out << "  <feature" << attr("name", s.name) << attr("state", s.state)
        << "/>\n";
  }
  out << "</features>\n";
  return out.str();
}

}  // namespace likwid::cli
