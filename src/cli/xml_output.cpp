#include "cli/xml_output.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <span>
#include <vector>

#include "api/result_table.hpp"
#include "cli/series_output.hpp"
#include "cli/sinks.hpp"
#include "util/strings.hpp"

namespace likwid::cli {

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

std::string attr(const std::string& name, const std::string& value) {
  return " " + name + "=\"" + xml_escape(value) + "\"";
}

std::string attr(const std::string& name, double value) {
  return attr(name, util::format_metric(value));
}

std::string attr(const std::string& name, int value) {
  return attr(name, std::to_string(value));
}

}  // namespace

std::string xml_topology(const core::NodeTopology& topo) {
  std::ostringstream out;
  out << "<node" << attr("cpuName", topo.cpu_name)
      << attr("clockGHz", topo.clock_ghz)
      << attr("sockets", topo.num_sockets)
      << attr("coresPerSocket", topo.num_cores_per_socket)
      << attr("threadsPerCore", topo.num_threads_per_core) << ">\n";
  out << "  <hwThreads>\n";
  for (const auto& t : topo.threads) {
    out << "    <hwThread" << attr("id", t.os_id)
        << attr("thread", t.thread_id) << attr("core", t.core_id)
        << attr("socket", t.socket_id)
        << attr("apicId", static_cast<int>(t.apic_id)) << "/>\n";
  }
  out << "  </hwThreads>\n";
  out << "  <caches>\n";
  for (const auto& c : topo.caches) {
    out << "    <cache" << attr("level", c.level)
        << attr("type", std::string(hwsim::to_string(c.type)))
        << attr("sizeBytes", static_cast<int>(c.size_bytes))
        << attr("associativity", static_cast<int>(c.associativity))
        << attr("lineSize", static_cast<int>(c.line_size))
        << attr("sets", static_cast<int>(c.num_sets))
        << attr("inclusive", c.inclusive ? "true" : "false")
        << attr("threadsSharing", c.threads_sharing) << ">\n";
    for (const auto& group : c.groups) {
      out << "      <group>";
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (i > 0) out << " ";
        out << group[i];
      }
      out << "</group>\n";
    }
    out << "    </cache>\n";
  }
  out << "  </caches>\n";
  out << "</node>\n";
  return out.str();
}

std::string xml_numa(const core::NumaTopology& numa) {
  std::ostringstream out;
  out << "<numa" << attr("domains", numa.num_domains()) << ">\n";
  for (const auto& d : numa.domains) {
    out << "  <domain" << attr("id", d.id)
        << attr("memoryTotalGB", d.memory_total_gb)
        << attr("memoryFreeGB", d.memory_free_gb) << ">\n";
    out << "    <processors>";
    for (std::size_t i = 0; i < d.processors.size(); ++i) {
      if (i > 0) out << " ";
      out << d.processors[i];
    }
    out << "</processors>\n";
    out << "    <distances>";
    for (std::size_t i = 0; i < d.distances.size(); ++i) {
      if (i > 0) out << " ";
      out << d.distances[i];
    }
    out << "</distances>\n";
    out << "  </domain>\n";
  }
  out << "</numa>\n";
  return out.str();
}

namespace {

// ResultTable is a public struct embedders may build by hand; a row
// shorter than the cpu list reads as 0.0 (the writers' historical
// fallback) instead of indexing out of bounds.
double value_at(std::span<const double> values, std::size_t c) {
  return c < values.size() ? values[c] : 0.0;
}

void xml_counts(std::ostringstream& out, const std::vector<int>& cpus,
                const std::vector<api::ResultTable::EventRow>& events,
                const std::string& indent) {
  for (std::size_t c = 0; c < cpus.size(); ++c) {
    out << indent << "<cpu" << attr("id", cpus[c]) << ">\n";
    for (const auto& event : events) {
      out << indent << "  <event" << attr("name", event.event)
          << attr("counter", event.counter)
          << attr("count", value_at(event.values, c)) << "/>\n";
    }
    out << indent << "</cpu>\n";
  }
}

void xml_metrics(std::ostringstream& out, const std::vector<int>& cpus,
                 const std::vector<api::ResultTable::MetricRow>& metrics,
                 const std::string& indent) {
  for (const auto& metric : metrics) {
    out << indent << "<metric" << attr("name", metric.name) << ">\n";
    // The former cpu -> value map iterated in ascending cpu order; emit
    // the dense row the same way so existing XML consumers see no change.
    std::vector<std::pair<int, double>> by_cpu;
    by_cpu.reserve(cpus.size());
    for (std::size_t i = 0; i < cpus.size(); ++i) {
      by_cpu.emplace_back(cpus[i], value_at(metric.values, i));
    }
    std::sort(by_cpu.begin(), by_cpu.end());
    for (const auto& [cpu, value] : by_cpu) {
      out << indent << "  <value" << attr("cpu", cpu)
          << attr("v", value) << "/>\n";
    }
    out << indent << "</metric>\n";
  }
}

}  // namespace

std::string XmlSink::measurement(const api::ResultTable& table) const {
  std::ostringstream out;
  out << "<measurement" << attr("group", table.group)
      << attr("seconds", table.seconds) << ">\n";
  // Metric-only tables (likwid-bench reports) skip the per-cpu counts.
  if (!table.events.empty()) xml_counts(out, table.cpus, table.events, "  ");
  if (table.has_metrics) {
    xml_metrics(out, table.cpus, table.metrics, "  ");
  }
  out << "</measurement>\n";
  return out.str();
}

std::string XmlSink::regions(const api::RegionReport& report) const {
  std::ostringstream out;
  out << "<regions>\n";
  for (const auto& region : report.regions) {
    out << "  <region" << attr("name", region.name)
        << attr("calls", region.calls) << ">\n";
    xml_counts(out, report.cpus, region.events, "    ");
    if (report.has_metrics) {
      xml_metrics(out, report.cpus, region.metrics, "    ");
    }
    out << "  </region>\n";
  }
  out << "</regions>\n";
  return out.str();
}

std::string XmlSink::series(
    const std::vector<monitor::SeriesPoint>& points) const {
  return xml_series(points);
}

std::string xml_measurement(const core::PerfCtr& ctr, int set) {
  return XmlSink().measurement(api::measurement_table(ctr, set));
}

std::string xml_regions(const core::PerfCtr& ctr, int set,
                        const core::MarkerSession& session) {
  return XmlSink().regions(api::region_report(ctr, set, session));
}

std::string xml_features(const core::NodeTopology& topo, int cpu,
                         const std::vector<core::FeatureState>& states) {
  std::ostringstream out;
  out << "<features" << attr("cpuName", topo.cpu_name) << attr("cpu", cpu)
      << ">\n";
  for (const auto& s : states) {
    out << "  <feature" << attr("name", s.name) << attr("state", s.state)
        << "/>\n";
  }
  out << "</features>\n";
  return out.str();
}

}  // namespace likwid::cli
