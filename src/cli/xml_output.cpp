#include "cli/xml_output.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "util/strings.hpp"

namespace likwid::cli {

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

std::string attr(const std::string& name, const std::string& value) {
  return " " + name + "=\"" + xml_escape(value) + "\"";
}

std::string attr(const std::string& name, double value) {
  return attr(name, util::format_metric(value));
}

std::string attr(const std::string& name, int value) {
  return attr(name, std::to_string(value));
}

}  // namespace

std::string xml_topology(const core::NodeTopology& topo) {
  std::ostringstream out;
  out << "<node" << attr("cpuName", topo.cpu_name)
      << attr("clockGHz", topo.clock_ghz)
      << attr("sockets", topo.num_sockets)
      << attr("coresPerSocket", topo.num_cores_per_socket)
      << attr("threadsPerCore", topo.num_threads_per_core) << ">\n";
  out << "  <hwThreads>\n";
  for (const auto& t : topo.threads) {
    out << "    <hwThread" << attr("id", t.os_id)
        << attr("thread", t.thread_id) << attr("core", t.core_id)
        << attr("socket", t.socket_id)
        << attr("apicId", static_cast<int>(t.apic_id)) << "/>\n";
  }
  out << "  </hwThreads>\n";
  out << "  <caches>\n";
  for (const auto& c : topo.caches) {
    out << "    <cache" << attr("level", c.level)
        << attr("type", std::string(hwsim::to_string(c.type)))
        << attr("sizeBytes", static_cast<int>(c.size_bytes))
        << attr("associativity", static_cast<int>(c.associativity))
        << attr("lineSize", static_cast<int>(c.line_size))
        << attr("sets", static_cast<int>(c.num_sets))
        << attr("inclusive", c.inclusive ? "true" : "false")
        << attr("threadsSharing", c.threads_sharing) << ">\n";
    for (const auto& group : c.groups) {
      out << "      <group>";
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (i > 0) out << " ";
        out << group[i];
      }
      out << "</group>\n";
    }
    out << "    </cache>\n";
  }
  out << "  </caches>\n";
  out << "</node>\n";
  return out.str();
}

std::string xml_numa(const core::NumaTopology& numa) {
  std::ostringstream out;
  out << "<numa" << attr("domains", numa.num_domains()) << ">\n";
  for (const auto& d : numa.domains) {
    out << "  <domain" << attr("id", d.id)
        << attr("memoryTotalGB", d.memory_total_gb)
        << attr("memoryFreeGB", d.memory_free_gb) << ">\n";
    out << "    <processors>";
    for (std::size_t i = 0; i < d.processors.size(); ++i) {
      if (i > 0) out << " ";
      out << d.processors[i];
    }
    out << "</processors>\n";
    out << "    <distances>";
    for (std::size_t i = 0; i < d.distances.size(); ++i) {
      if (i > 0) out << " ";
      out << d.distances[i];
    }
    out << "</distances>\n";
    out << "  </domain>\n";
  }
  out << "</numa>\n";
  return out.str();
}

namespace {

void xml_counts(std::ostringstream& out, const core::PerfCtr& ctr, int set,
                const core::CountSlab& counts, const std::string& indent) {
  const auto& assignments = ctr.assignments_of(set);
  for (const int cpu : ctr.cpus()) {
    out << indent << "<cpu" << attr("id", cpu) << ">\n";
    const int r = counts.empty() ? -1 : counts.row_of(cpu);
    for (std::size_t slot = 0; slot < assignments.size(); ++slot) {
      const double value =
          r < 0 ? 0.0 : counts.row(static_cast<std::size_t>(r))[slot];
      out << indent << "  <event" << attr("name", assignments[slot].event_name)
          << attr("counter", assignments[slot].counter_name)
          << attr("count", value) << "/>\n";
    }
    out << indent << "</cpu>\n";
  }
}

void xml_metrics(std::ostringstream& out,
                 const std::vector<core::PerfCtr::MetricRow>& rows,
                 const std::string& indent) {
  for (const auto& row : rows) {
    out << indent << "<metric" << attr("name", row.name()) << ">\n";
    // The former cpu -> value map iterated in ascending cpu order; emit
    // the dense row the same way so existing XML consumers see no change.
    std::vector<std::pair<int, double>> by_cpu;
    by_cpu.reserve(row.cpus->size());
    for (std::size_t i = 0; i < row.cpus->size(); ++i) {
      by_cpu.emplace_back((*row.cpus)[i], row.values[i]);
    }
    std::sort(by_cpu.begin(), by_cpu.end());
    for (const auto& [cpu, value] : by_cpu) {
      out << indent << "  <value" << attr("cpu", cpu)
          << attr("v", value) << "/>\n";
    }
    out << indent << "</metric>\n";
  }
}

}  // namespace

std::string xml_measurement(const core::PerfCtr& ctr, int set) {
  std::ostringstream out;
  const auto& group = ctr.group_of(set);
  out << "<measurement"
      << attr("group", group ? group->name : std::string("custom"))
      << attr("seconds", ctr.results(set).measured_seconds) << ">\n";
  xml_counts(out, ctr, set, ctr.extrapolated_counts(set), "  ");
  if (group) {
    xml_metrics(out, ctr.compute_metrics(set), "  ");
  }
  out << "</measurement>\n";
  return out.str();
}

std::string xml_regions(const core::PerfCtr& ctr, int set,
                        const core::MarkerSession& session) {
  std::ostringstream out;
  out << "<regions>\n";
  for (const auto& region : session.regions()) {
    out << "  <region" << attr("name", region.name)
        << attr("calls", region.call_count) << ">\n";
    xml_counts(out, ctr, set, region.counts, "    ");
    if (ctr.group_of(set)) {
      double wall = 0;
      for (const auto& [cpu, seconds] : region.seconds) {
        wall = std::max(wall, seconds);
      }
      xml_metrics(out, ctr.compute_metrics_for(set, region.counts, wall),
                  "    ");
    }
    out << "  </region>\n";
  }
  out << "</regions>\n";
  return out.str();
}

std::string xml_features(const core::NodeTopology& topo, int cpu,
                         const std::vector<core::FeatureState>& states) {
  std::ostringstream out;
  out << "<features" << attr("cpuName", topo.cpu_name) << attr("cpu", cpu)
      << ">\n";
  for (const auto& s : states) {
    out << "  <feature" << attr("name", s.name) << attr("state", s.state)
        << "/>\n";
  }
  out << "</features>\n";
  return out.str();
}

}  // namespace likwid::cli
