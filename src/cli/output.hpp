// output.hpp — rendering of all tool output in the exact style of the
// paper's listings: 61-dash separators, starred section banners, '+--+'
// tables with "core N" columns, "( 0 12 ) ( 1 13 )" cache groups, and the
// -g ASCII-art socket diagram.
#pragma once

#include <string>
#include <vector>

#include "core/features.hpp"
#include "core/marker.hpp"
#include "core/numa.hpp"
#include "core/perfctr.hpp"
#include "core/topology.hpp"

namespace likwid::cli {

/// "CPU name/clock" block shared by all tools.
std::string render_header(const core::NodeTopology& topo);

/// likwid-topology report; `extended` adds the cache detail block (-c).
std::string render_topology_report(const core::NodeTopology& topo,
                                   bool extended);

/// The -g ASCII art: one box per socket, core labels, one row of boxes per
/// data-cache level with shared caches spanning their cores.
std::string render_topology_ascii(const core::NodeTopology& topo);

/// Wrapper-mode result block for one event set: the event table and, for
/// group sets, the derived-metric table.
std::string render_measurement(const core::PerfCtr& ctr, int set);

/// Marker-mode block: one "Region: <name>" section per region.
std::string render_regions(const core::PerfCtr& ctr, int set,
                           const core::MarkerSession& session);

/// likwid-features report.
std::string render_features(const core::NodeTopology& topo, int cpu,
                            const std::vector<core::FeatureState>& states);

/// NUMA topology section (the paper's Section V near-term goal).
std::string render_numa(const core::NumaTopology& numa);

}  // namespace likwid::cli
