#include "cli/csv_output.hpp"

#include <sstream>

#include "api/result_table.hpp"
#include "cli/series_output.hpp"
#include "cli/sinks.hpp"
#include "util/strings.hpp"

namespace likwid::cli {

namespace {

/// Append one CSV row from already-escaped cells.
void row(std::ostringstream& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out << ',';
    out << cells[i];
  }
  out << '\n';
}

std::vector<std::string> cpu_header(const std::vector<int>& cpus,
                                    std::vector<std::string> prefix) {
  for (const int cpu : cpus) {
    prefix.push_back("core " + std::to_string(cpu));
  }
  return prefix;
}

void event_rows(std::ostringstream& out, const std::vector<int>& cpus,
                const std::vector<api::ResultTable::EventRow>& events) {
  row(out, cpu_header(cpus, {"Event", "Counter"}));
  for (const auto& event : events) {
    std::vector<std::string> cells = {csv_escape(event.event),
                                      csv_escape(event.counter)};
    for (const double value : event.values) {
      // Counts format the way the ASCII tables do (integral when exact).
      cells.push_back(util::format_count(value));
    }
    row(out, cells);
  }
}

void metric_rows(std::ostringstream& out, const std::vector<int>& cpus,
                 const std::vector<api::ResultTable::MetricRow>& metrics) {
  row(out, cpu_header(cpus, {"Metric"}));
  for (const auto& metric : metrics) {
    std::vector<std::string> cells = {csv_escape(metric.name)};
    for (const double value : metric.values) {
      cells.push_back(util::format_metric(value));
    }
    row(out, cells);
  }
}

}  // namespace

std::string csv_escape(std::string_view field) {
  if (field.find_first_of(",\"\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvSink::measurement(const api::ResultTable& table) const {
  std::ostringstream out;
  row(out, {"GROUP", csv_escape(table.group)});
  // Metric-only tables (likwid-bench reports) skip the event section.
  if (!table.events.empty()) event_rows(out, table.cpus, table.events);
  if (table.has_metrics) {
    metric_rows(out, table.cpus, table.metrics);
  }
  return out.str();
}

std::string CsvSink::regions(const api::RegionReport& report) const {
  std::ostringstream out;
  row(out, {"GROUP", csv_escape(report.group)});
  for (const auto& region : report.regions) {
    row(out, {"REGION", csv_escape(region.name)});
    event_rows(out, report.cpus, region.events);
    if (report.has_metrics) {
      metric_rows(out, report.cpus, region.metrics);
    }
  }
  return out.str();
}

std::string CsvSink::series(
    const std::vector<monitor::SeriesPoint>& points) const {
  return csv_series(points);
}

std::string csv_measurement(const core::PerfCtr& ctr, int set) {
  return CsvSink().measurement(api::measurement_table(ctr, set));
}

std::string csv_regions(const core::PerfCtr& ctr, int set,
                        const core::MarkerSession& session) {
  return CsvSink().regions(api::region_report(ctr, set, session));
}

std::string csv_topology(const core::NodeTopology& topo) {
  std::ostringstream out;
  row(out, {"TABLE", "node"});
  row(out, {"CPU name", csv_escape(topo.cpu_name)});
  row(out, {"CPU clock GHz", util::format_metric(topo.clock_ghz)});
  row(out, {"Sockets", std::to_string(topo.num_sockets)});
  row(out, {"Cores per socket", std::to_string(topo.num_cores_per_socket)});
  row(out, {"Threads per core", std::to_string(topo.num_threads_per_core)});

  row(out, {"TABLE", "threads"});
  row(out, {"HWThread", "Thread", "Core", "Socket", "APIC"});
  for (const auto& t : topo.threads) {
    row(out, {std::to_string(t.os_id), std::to_string(t.thread_id),
              std::to_string(t.core_id), std::to_string(t.socket_id),
              std::to_string(t.apic_id)});
  }

  row(out, {"TABLE", "caches"});
  row(out, {"Level", "Type", "Size kB", "Associativity", "Sets",
            "Line size", "Inclusive", "Shared by"});
  for (const auto& c : topo.caches) {
    row(out, {std::to_string(c.level),
              std::string(hwsim::to_string(c.type)),
              std::to_string(c.size_bytes / 1024),
              std::to_string(c.associativity), std::to_string(c.num_sets),
              std::to_string(c.line_size), c.inclusive ? "yes" : "no",
              std::to_string(c.threads_sharing)});
  }
  return out.str();
}

}  // namespace likwid::cli
