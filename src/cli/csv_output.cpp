#include "cli/csv_output.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace likwid::cli {

namespace {

/// Format a count the way the ASCII tables do (integral when exact).
std::string format_value(double v) {
  return util::format_count(v);
}

/// Append one CSV row from already-escaped cells.
void row(std::ostringstream& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out << ',';
    out << cells[i];
  }
  out << '\n';
}

std::vector<std::string> cpu_header(const core::PerfCtr& ctr,
                                    std::vector<std::string> prefix) {
  for (const int cpu : ctr.cpus()) {
    prefix.push_back("core " + std::to_string(cpu));
  }
  return prefix;
}

void event_rows(std::ostringstream& out, const core::PerfCtr& ctr, int set,
                const core::CountSlab& counts) {
  row(out, cpu_header(ctr, {"Event", "Counter"}));
  const auto& assignments = ctr.assignments_of(set);
  std::vector<int> cpu_rows;
  for (const int cpu : ctr.cpus()) {
    cpu_rows.push_back(counts.empty() ? -1 : counts.row_of(cpu));
  }
  for (std::size_t slot = 0; slot < assignments.size(); ++slot) {
    std::vector<std::string> cells = {csv_escape(assignments[slot].event_name),
                                      csv_escape(assignments[slot].counter_name)};
    for (const int r : cpu_rows) {
      const double v =
          r < 0 ? 0.0 : counts.row(static_cast<std::size_t>(r))[slot];
      cells.push_back(format_value(v));
    }
    row(out, cells);
  }
}

void metric_rows(std::ostringstream& out, const core::PerfCtr& ctr,
                 const std::vector<core::PerfCtr::MetricRow>& metrics) {
  row(out, cpu_header(ctr, {"Metric"}));
  for (const auto& m : metrics) {
    std::vector<std::string> cells = {csv_escape(m.name())};
    for (const int cpu : ctr.cpus()) {
      cells.push_back(util::format_metric(m.value_or(cpu, 0.0)));
    }
    row(out, cells);
  }
}

}  // namespace

std::string csv_escape(std::string_view field) {
  if (field.find_first_of(",\"\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_measurement(const core::PerfCtr& ctr, int set) {
  std::ostringstream out;
  const auto& group = ctr.group_of(set);
  row(out, {"GROUP", group ? csv_escape(group->name) : "custom"});
  event_rows(out, ctr, set, ctr.extrapolated_counts(set));
  if (group) {
    metric_rows(out, ctr, ctr.compute_metrics(set));
  }
  return out.str();
}

std::string csv_regions(const core::PerfCtr& ctr, int set,
                        const core::MarkerSession& session) {
  std::ostringstream out;
  const auto& group = ctr.group_of(set);
  row(out, {"GROUP", group ? csv_escape(group->name) : "custom"});
  for (const auto& region : session.regions()) {
    row(out, {"REGION", csv_escape(region.name)});
    event_rows(out, ctr, set, region.counts);
    if (group) {
      double wall = 0;
      for (const auto& [cpu, seconds] : region.seconds) {
        wall = std::max(wall, seconds);
      }
      metric_rows(out, ctr,
                  ctr.compute_metrics_for(set, region.counts, wall));
    }
  }
  return out.str();
}

std::string csv_topology(const core::NodeTopology& topo) {
  std::ostringstream out;
  row(out, {"TABLE", "node"});
  row(out, {"CPU name", csv_escape(topo.cpu_name)});
  row(out, {"CPU clock GHz", util::format_metric(topo.clock_ghz)});
  row(out, {"Sockets", std::to_string(topo.num_sockets)});
  row(out, {"Cores per socket", std::to_string(topo.num_cores_per_socket)});
  row(out, {"Threads per core", std::to_string(topo.num_threads_per_core)});

  row(out, {"TABLE", "threads"});
  row(out, {"HWThread", "Thread", "Core", "Socket", "APIC"});
  for (const auto& t : topo.threads) {
    row(out, {std::to_string(t.os_id), std::to_string(t.thread_id),
              std::to_string(t.core_id), std::to_string(t.socket_id),
              std::to_string(t.apic_id)});
  }

  row(out, {"TABLE", "caches"});
  row(out, {"Level", "Type", "Size kB", "Associativity", "Sets",
            "Line size", "Inclusive", "Shared by"});
  for (const auto& c : topo.caches) {
    row(out, {std::to_string(c.level),
              std::string(hwsim::to_string(c.type)),
              std::to_string(c.size_bytes / 1024),
              std::to_string(c.associativity), std::to_string(c.num_sets),
              std::to_string(c.line_size), c.inclusive ? "yes" : "no",
              std::to_string(c.threads_sharing)});
  }
  return out.str();
}

}  // namespace likwid::cli
