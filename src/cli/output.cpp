#include "cli/output.hpp"

#include <algorithm>
#include <sstream>

#include "api/result_table.hpp"
#include "cli/series_output.hpp"
#include "cli/sinks.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace likwid::cli {

using util::AsciiTable;
using util::separator_line;
using util::star_line;
using util::strprintf;

namespace {

std::string group_list(const std::vector<int>& members) {
  std::string out = "( ";
  for (const int m : members) out += std::to_string(m) + " ";
  out += ")";
  return out;
}

std::string banner(const std::string& title) {
  return star_line() + title + "\n" + star_line();
}

}  // namespace

std::string render_header(const core::NodeTopology& topo) {
  std::string out = separator_line();
  out += "CPU name:\t" + topo.cpu_name + "\n";
  out += strprintf("CPU clock:\t%.2f GHz\n", topo.clock_ghz);
  out += separator_line();
  return out;
}

std::string render_topology_report(const core::NodeTopology& topo,
                                   bool extended) {
  std::ostringstream out;
  out << render_header(topo);
  out << banner("Hardware Thread Topology");
  out << "Sockets:\t\t" << topo.num_sockets << "\n";
  out << "Cores per socket:\t" << topo.num_cores_per_socket << "\n";
  out << "Threads per core:\t" << topo.num_threads_per_core << "\n";
  out << separator_line();
  out << "HWThread\tThread\t\tCore\t\tSocket\n";
  for (const auto& t : topo.threads) {
    out << t.os_id << "\t\t" << t.thread_id << "\t\t" << t.core_id << "\t\t"
        << t.socket_id << "\n";
  }
  out << separator_line();
  for (std::size_t s = 0; s < topo.sockets.size(); ++s) {
    out << "Socket " << s << ": " << group_list(topo.sockets[s]) << "\n";
  }
  out << separator_line();

  out << banner("Cache Topology");
  for (const auto& c : topo.caches) {
    out << "Level:\t" << c.level << "\n";
    out << "Size:\t" << util::format_size(c.size_bytes) << "\n";
    out << "Type:\t" << hwsim::to_string(c.type) << "\n";
    if (extended) {
      out << "Associativity:\t" << c.associativity << "\n";
      out << "Number of sets:\t" << c.num_sets << "\n";
      out << "Cache line size:\t" << c.line_size << "\n";
      out << (c.inclusive ? "Inclusive cache" : "Non Inclusive cache") << "\n";
      out << "Shared among " << c.threads_sharing << " threads\n";
    }
    out << "Cache groups:\t";
    for (const auto& g : c.groups) out << group_list(g) << " ";
    out << "\n" << separator_line();
  }
  return out.str();
}

std::string render_topology_ascii(const core::NodeTopology& topo) {
  // Cell width: widest of core labels and cache size strings.
  std::vector<std::string> core_labels;
  for (int s = 0; s < topo.num_sockets; ++s) {
    for (const auto& core : topo.cores) {
      if (topo.threads[static_cast<std::size_t>(core.front())].socket_id != s)
        continue;
      std::string label;
      for (const int os : core) {
        if (!label.empty()) label += " ";
        label += std::to_string(os);
      }
      core_labels.push_back(label);
    }
  }
  std::size_t cell = 0;
  for (const auto& l : core_labels) cell = std::max(cell, l.size());
  for (const auto& c : topo.caches) {
    cell = std::max(cell, util::format_size(c.size_bytes).size());
  }
  cell += 2;  // one space padding each side

  const int cores = topo.num_cores_per_socket;
  const auto span_width = [&](int ncells) {
    return static_cast<std::size_t>(ncells) * (cell + 2) +
           static_cast<std::size_t>(ncells - 1);
  };
  const std::size_t inner = span_width(cores);

  const auto boxed = [&](const std::string& text, std::size_t width) {
    // center `text` in a width-`width` field.
    const std::size_t pad = width > text.size() ? width - text.size() : 0;
    const std::size_t left = pad / 2;
    return std::string(left, ' ') + text + std::string(pad - left, ' ');
  };

  std::ostringstream out;
  for (int s = 0; s < topo.num_sockets; ++s) {
    out << "+" << std::string(inner + 2, '-') << "+\n";
    // Core label row (three lines of boxes).
    std::vector<std::string> labels;
    for (int c = 0; c < cores; ++c) {
      labels.push_back(core_labels[static_cast<std::size_t>(s * cores + c)]);
    }
    const auto box_row = [&](const std::vector<std::string>& cells,
                             int cells_per_box) {
      std::string top = "| ";
      std::string mid = "| ";
      std::string bot = "| ";
      const std::size_t w = span_width(cells_per_box);
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) {
          top += " ";
          mid += " ";
          bot += " ";
        }
        top += "+" + std::string(w - 2, '-') + "+";
        mid += "|" + boxed(cells[i], w - 2) + "|";
        bot += "+" + std::string(w - 2, '-') + "+";
      }
      top += " |\n";
      mid += " |\n";
      bot += " |\n";
      out << top << mid << bot;
    };
    box_row(labels, 1);
    for (const auto& cache : topo.caches) {
      const int groups_in_socket =
          static_cast<int>(cache.groups.size()) / topo.num_sockets;
      const int cells_per_box = cores / std::max(1, groups_in_socket);
      std::vector<std::string> cells(
          static_cast<std::size_t>(groups_in_socket),
          util::format_size(cache.size_bytes));
      box_row(cells, cells_per_box);
    }
    out << "+" << std::string(inner + 2, '-') << "+\n";
  }
  return out.str();
}

namespace {

/// Shared table body: one row per event, one column per measured cpu.
std::string event_table(const std::vector<int>& cpus,
                        const std::vector<api::ResultTable::EventRow>& events) {
  std::vector<std::string> headers = {"Event"};
  for (const int cpu : cpus) {
    headers.push_back("core " + std::to_string(cpu));
  }
  AsciiTable table(headers);
  for (const auto& event : events) {
    std::vector<std::string> row = {event.event};
    for (const double value : event.values) {
      row.push_back(util::format_count(value));
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string metric_table(
    const std::vector<int>& cpus,
    const std::vector<api::ResultTable::MetricRow>& metrics) {
  std::vector<std::string> headers = {"Metric"};
  for (const int cpu : cpus) {
    headers.push_back("core " + std::to_string(cpu));
  }
  AsciiTable table(headers);
  for (const auto& metric : metrics) {
    std::vector<std::string> cells = {metric.name};
    for (const double value : metric.values) {
      cells.push_back(util::format_metric(value));
    }
    table.add_row(std::move(cells));
  }
  return table.render();
}

}  // namespace

std::string AsciiSink::measurement(const api::ResultTable& table) const {
  std::ostringstream out;
  if (table.has_metrics) {
    out << "Measuring group " << table.group << "\n" << separator_line();
  } else {
    out << "Measuring custom event set\n" << separator_line();
  }
  // Synthesized tables (likwid-bench reports) carry metrics only; an
  // empty event grid would render as a bare header box.
  if (!table.events.empty()) {
    out << event_table(table.cpus, table.events);
  }
  if (table.has_metrics) {
    out << metric_table(table.cpus, table.metrics);
  }
  return out.str();
}

std::string AsciiSink::regions(const api::RegionReport& report) const {
  std::ostringstream out;
  if (report.has_metrics) {
    out << "Measuring group " << report.group << "\n" << separator_line();
  }
  for (const auto& region : report.regions) {
    out << "Region: " << region.name << "\n";
    out << event_table(report.cpus, region.events);
    if (report.has_metrics) {
      out << metric_table(report.cpus, region.metrics);
    }
  }
  return out.str();
}

std::string AsciiSink::series(
    const std::vector<monitor::SeriesPoint>& points) const {
  // The tools never grew an ASCII series layout; the CSV one is the
  // human-readable default likwid-agent prints to stdout.
  return csv_series(points);
}

std::string render_measurement(const core::PerfCtr& ctr, int set) {
  return AsciiSink().measurement(api::measurement_table(ctr, set));
}

std::string render_regions(const core::PerfCtr& ctr, int set,
                           const core::MarkerSession& session) {
  return AsciiSink().regions(api::region_report(ctr, set, session));
}

std::string render_numa(const core::NumaTopology& numa) {
  std::ostringstream out;
  out << banner("NUMA Topology");
  out << "NUMA domains: " << numa.num_domains() << "\n";
  out << separator_line();
  for (const auto& d : numa.domains) {
    out << "Domain " << d.id << ":\n";
    out << "Processors: " << group_list(d.processors) << "\n";
    out << strprintf("Memory: %.1f GB free of total %.1f GB\n",
                     d.memory_free_gb, d.memory_total_gb);
    out << "Distances: ";
    for (std::size_t i = 0; i < d.distances.size(); ++i) {
      if (i > 0) out << " ";
      out << d.distances[i];
    }
    out << "\n" << separator_line();
  }
  return out.str();
}

std::string render_features(const core::NodeTopology& topo, int cpu,
                            const std::vector<core::FeatureState>& states) {
  std::ostringstream out;
  out << separator_line();
  out << "CPU name:\t" << topo.cpu_name << "\n";
  out << "CPU core id:\t" << cpu << "\n";
  out << separator_line();
  for (const auto& s : states) {
    out << s.name << ": " << s.state << "\n";
  }
  out << separator_line();
  return out.str();
}

}  // namespace likwid::cli
