// xml_output.hpp — XML rendering of tool results.
//
// The paper (Section V): "On popular demand, future releases will also
// include support for XML output." This module implements that feature for
// the topology report, NUMA layout, measurement results and the features
// listing, so downstream tooling can parse tool output without scraping
// the ASCII tables.
#pragma once

#include <string>

#include "core/features.hpp"
#include "core/marker.hpp"
#include "core/numa.hpp"
#include "core/perfctr.hpp"
#include "core/topology.hpp"

namespace likwid::cli {

/// Escape &, <, >, ", ' for XML text and attribute contexts.
std::string xml_escape(std::string_view text);

/// <node><cpu .../><sockets>...<caches>... per likwid-topology.
std::string xml_topology(const core::NodeTopology& topo);

/// <numa><domain id=.. memoryGB=..><processor/>*<distance/>*</domain>*.
std::string xml_numa(const core::NumaTopology& numa);

/// <measurement group=..><set><cpu id=..><event name=.. count=../>...
/// with derived metrics for group sets.
std::string xml_measurement(const core::PerfCtr& ctr, int set);

/// <regions><region name=..>... for marker-mode results.
std::string xml_regions(const core::PerfCtr& ctr, int set,
                        const core::MarkerSession& session);

/// <features cpu=..><feature name=.. state=../>...
std::string xml_features(const core::NodeTopology& topo, int cpu,
                         const std::vector<core::FeatureState>& states);

}  // namespace likwid::cli
