// args.hpp — minimal command-line option parsing for the tools.
// Supports short/long flags with or without values ("-c 0-3", "--machine
// westmere-ep", "-g") and positional arguments.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace likwid::cli {

class ArgParser {
 public:
  /// `value_flags` are the options that consume the following argument.
  ArgParser(int argc, const char* const* argv,
            std::set<std::string> value_flags);

  bool has(const std::string& flag) const { return flags_.count(flag) != 0; }

  std::optional<std::string> value(const std::string& flag) const {
    const auto it = values_.find(flag);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::string value_or(const std::string& flag,
                       const std::string& fallback) const {
    const auto v = value(flag);
    return v ? *v : fallback;
  }

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::set<std::string> flags_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace likwid::cli
