#include "cli/args.hpp"

#include "util/status.hpp"

namespace likwid::cli {

ArgParser::ArgParser(int argc, const char* const* argv,
                     std::set<std::string> value_flags) {
  LIKWID_REQUIRE(argc >= 1, "empty argument vector");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg.front() == '-' && arg != "-") {
      flags_.insert(arg);
      if (value_flags.count(arg) != 0) {
        if (i + 1 >= argc) {
          throw_error(ErrorCode::kInvalidArgument,
                      "option " + arg + " requires a value");
        }
        values_[arg] = argv[++i];
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

}  // namespace likwid::cli
