#include "cli/series_output.hpp"

#include <sstream>

#include "cli/csv_output.hpp"
#include "cli/xml_output.hpp"
#include "util/strings.hpp"

namespace likwid::cli {

std::string csv_series_header() {
  return "machine,window,group,metric,t_start[s],t_end[s],samples,min,avg,"
         "max,p95";
}

std::string csv_series(const std::vector<monitor::SeriesPoint>& points) {
  std::ostringstream out;
  out << "SERIES,likwid-agent\n" << csv_series_header() << "\n";
  for (const auto& p : points) {
    out << p.machine_id << ',' << p.window << ',' << csv_escape(p.group())
        << ',' << csv_escape(p.metric()) << ','
        << util::format_metric(p.t_start) << ','
        << util::format_metric(p.t_end) << ',' << p.stats.count << ','
        << util::format_metric(p.stats.min) << ','
        << util::format_metric(p.stats.avg) << ','
        << util::format_metric(p.stats.max) << ','
        << util::format_metric(p.stats.p95) << '\n';
  }
  return out.str();
}

std::string xml_series(const std::vector<monitor::SeriesPoint>& points) {
  const auto attr = [](const std::string& name, const std::string& value) {
    return " " + name + "=\"" + xml_escape(value) + "\"";
  };
  std::ostringstream out;
  out << "<monitorSeries>\n";
  for (const auto& p : points) {
    out << "  <rollup" << attr("machine", std::to_string(p.machine_id))
        << attr("window", std::to_string(p.window)) << attr("group", p.group())
        << attr("metric", p.metric())
        << attr("start", util::format_metric(p.t_start))
        << attr("end", util::format_metric(p.t_end))
        << attr("samples", std::to_string(p.stats.count))
        << attr("min", util::format_metric(p.stats.min))
        << attr("avg", util::format_metric(p.stats.avg))
        << attr("max", util::format_metric(p.stats.max))
        << attr("p95", util::format_metric(p.stats.p95)) << "/>\n";
  }
  out << "</monitorSeries>\n";
  return out.str();
}

}  // namespace likwid::cli
