// series_output.hpp — CSV/XML rendering of timestamped monitoring series.
//
// Extends the Section V output formats from one-shot result blocks to the
// windowed rollups of the continuous agent: one row (or element) per
// (machine, window, group, metric) cell with min/avg/max/p95 statistics,
// the export surface of likwid-agent.
#pragma once

#include <string>
#include <vector>

#include "monitor/aggregator.hpp"

namespace likwid::cli {

/// The column row of the series CSV (no trailing newline):
/// "machine,window,group,metric,t_start[s],t_end[s],samples,min,avg,max,p95".
std::string csv_series_header();

/// SERIES section: tag row, header row, one data row per rollup point.
std::string csv_series(const std::vector<monitor::SeriesPoint>& points);

/// <monitorSeries><rollup .../>...</monitorSeries>.
std::string xml_series(const std::vector<monitor::SeriesPoint>& points);

}  // namespace likwid::cli
