// strings.hpp — string helpers shared by all modules: splitting, trimming,
// case mapping, numeric parsing and the numeric formatting style used in
// likwid-perfctr's result tables (six-significant-digit shortest form,
// matching the paper's listings, e.g. "1.88024e+07", "0.0100882").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace likwid::util {

/// Split `text` at every occurrence of `sep`. Empty fields are preserved:
/// split(",a,", ',') == {"", "a", ""}.
std::vector<std::string> split(std::string_view text, char sep);

/// Split and drop empty fields after trimming whitespace from each part.
std::vector<std::string> split_trimmed(std::string_view text, char sep);

/// Remove leading and trailing whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Join `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string to_upper(std::string_view text);
std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// Parse a non-negative integer; accepts "0x" prefix for hex.
/// Returns std::nullopt on malformed input or overflow.
std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept;

/// Parse a floating point number. Returns std::nullopt on malformed input.
std::optional<double> parse_double(std::string_view text) noexcept;

/// Parse a byte size with an optional unit suffix, the likwid-bench
/// workgroup convention: "2MB", "1GB", "512kB", "64k", "100B", "4096".
/// Units are binary (kB = 1024 bytes, MB = 1024 kB) and case-insensitive;
/// a bare number is bytes. Returns std::nullopt on malformed input or
/// overflow.
std::optional<std::uint64_t> parse_size_bytes(std::string_view text) noexcept;

/// Parse a duration with an optional unit suffix into seconds: "500ms",
/// "10s", "5m", "1.5h", "250us"; a bare number is seconds. Units are
/// case-insensitive ("m" is minutes — durations have no mega). Returns
/// std::nullopt on malformed input, an unknown unit, or a negative or
/// non-finite value.
std::optional<double> parse_duration_seconds(std::string_view text) noexcept;

/// Format a double with 6 significant digits in shortest form, the style
/// used by likwid-perfctr tables ("%g"): 1624.08, 1.88024e+07, 0.693493.
std::string format_metric(double value);

/// Format a counter value: integral counts below 1e6 print exactly
/// ("313742"), larger values fall back to format_metric ("5.91e+08").
std::string format_count(double value);

/// Format bytes as "x.yz kB/MB/GB" with binary-ish HPC conventions used by
/// likwid-topology (kB = 1024 bytes, MB = 1024 kB).
std::string format_size(std::uint64_t bytes);

/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace likwid::util
