#include "util/cpulist.hpp"

#include "util/logging.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::util {

namespace {
constexpr int kMaxCpuId = 4095;

int parse_cpu_id(std::string_view text) {
  const auto value = parse_u64(text);
  if (!value || *value > static_cast<std::uint64_t>(kMaxCpuId)) {
    throw_error(ErrorCode::kInvalidArgument,
                "invalid cpu id '" + std::string(text) + "'");
  }
  return static_cast<int>(*value);
}
}  // namespace

std::vector<int> parse_cpu_list(std::string_view text) {
  text = trim(text);
  LIKWID_REQUIRE(!text.empty(), "empty cpu list");
  std::vector<int> cpus;
  // Expressions like "0,0-2" or "3,1-3" name the same cpu twice. A
  // duplicate must not survive into pinning round-robins or PerfCtr cpu
  // rows (a cpu measured twice double-counts in node reductions), so the
  // list is de-duplicated here, keeping each id's first occurrence.
  std::vector<bool> seen(static_cast<std::size_t>(kMaxCpuId) + 1, false);
  bool had_duplicates = false;
  const auto append = [&](int cpu) {
    if (seen[static_cast<std::size_t>(cpu)]) {
      had_duplicates = true;
      return;
    }
    seen[static_cast<std::size_t>(cpu)] = true;
    cpus.push_back(cpu);
  };
  for (const auto& piece : split(text, ',')) {
    const std::string_view item = trim(piece);
    LIKWID_REQUIRE(!item.empty(), "empty element in cpu list '" +
                                      std::string(text) + "'");
    const std::size_t dash = item.find('-');
    if (dash == std::string_view::npos) {
      append(parse_cpu_id(item));
      continue;
    }
    const int lo = parse_cpu_id(item.substr(0, dash));
    const int hi = parse_cpu_id(item.substr(dash + 1));
    LIKWID_REQUIRE(lo <= hi, "reversed cpu range '" + std::string(item) + "'");
    for (int cpu = lo; cpu <= hi; ++cpu) append(cpu);
  }
  if (had_duplicates) {
    LIKWID_WARN("cpu list '" << std::string(text)
                             << "' contains duplicate ids; collapsed to '"
                             << format_cpu_list(cpus) << "'");
  }
  return cpus;
}

std::string format_cpu_list(const std::vector<int>& cpus) {
  std::string out;
  std::size_t i = 0;
  while (i < cpus.size()) {
    std::size_t j = i;
    while (j + 1 < cpus.size() && cpus[j + 1] == cpus[j] + 1) ++j;
    if (!out.empty()) out += ',';
    if (j > i + 1) {
      out += std::to_string(cpus[i]) + "-" + std::to_string(cpus[j]);
    } else if (j == i + 1) {
      out += std::to_string(cpus[i]) + "," + std::to_string(cpus[j]);
    } else {
      out += std::to_string(cpus[i]);
    }
    i = j + 1;
  }
  return out;
}

SkipMask SkipMask::parse(std::string_view text) {
  text = trim(text);
  LIKWID_REQUIRE(!text.empty(), "empty skip mask");
  if (starts_with(text, "0b") || starts_with(text, "0B")) {
    std::uint64_t bits = 0;
    const std::string_view digits = text.substr(2);
    LIKWID_REQUIRE(!digits.empty() && digits.size() <= 64,
                   "invalid binary skip mask '" + std::string(text) + "'");
    for (const char c : digits) {
      LIKWID_REQUIRE(c == '0' || c == '1',
                     "invalid binary skip mask '" + std::string(text) + "'");
      bits = (bits << 1) | static_cast<std::uint64_t>(c - '0');
    }
    return SkipMask(bits);
  }
  const auto value = parse_u64(text);
  if (!value) {
    throw_error(ErrorCode::kInvalidArgument,
                "invalid skip mask '" + std::string(text) + "'");
  }
  return SkipMask(*value);
}

unsigned SkipMask::count_skipped(unsigned n) const noexcept {
  unsigned count = 0;
  for (unsigned i = 0; i < n && i < 64; ++i) {
    if (skips(i)) ++count;
  }
  return count;
}

}  // namespace likwid::util
