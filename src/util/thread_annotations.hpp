// thread_annotations.hpp — Clang thread-safety analysis for the suite's
// locking contracts.
//
// The locking invariants of the concurrent subsystems (the C handle
// registry, the Session use-tripwire, the agent fleet, the name interner)
// were previously prose comments checked only by whatever interleavings the
// TSan CI job happened to draw. These macros turn the contracts into
// machine-checked annotations: under Clang, `-Wthread-safety` (promoted to
// an error by the dedicated CI job) rejects any access to a
// LIKWID_GUARDED_BY member without the named capability held in the same
// function body. Under every other compiler the macros vanish.
//
// The analysis only understands types that declare themselves capabilities,
// and libstdc++'s std::mutex / std::lock_guard carry no annotations — so
// this header also provides drop-in annotated wrappers (util::Mutex,
// util::SharedMutex) and RAII guards (MutexLock, ExclusiveLock,
// SharedLock). Code holding a lock through std types is invisible to the
// checker; guarded state must be locked through these.
//
// The analysis is intraprocedural: the lock acquisition and the guarded
// access must be visible in the SAME function body (a lambda body counts as
// its own function). Helpers that lock and then invoke a caller-supplied
// callback therefore silently defeat the analysis — prefer a scoped guard
// constructed directly in the accessing function (see likwid_c.cpp's
// LIKWID_LOCK_LIVE_ENTRY for the pattern).
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define LIKWID_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LIKWID_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC have no analysis
#endif

/// Marks a type as a lockable capability (the string names it in
/// diagnostics: "reading variable 'x' requires holding mutex ...").
#define LIKWID_CAPABILITY(x) LIKWID_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define LIKWID_SCOPED_CAPABILITY LIKWID_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the capability held.
#define LIKWID_GUARDED_BY(x) LIKWID_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is protected by the capability (the
/// pointer itself may be read freely).
#define LIKWID_PT_GUARDED_BY(x) LIKWID_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held (and does not release it).
#define LIKWID_REQUIRES(...) \
  LIKWID_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define LIKWID_REQUIRES_SHARED(...) \
  LIKWID_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define LIKWID_ACQUIRE(...) \
  LIKWID_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LIKWID_ACQUIRE_SHARED(...) \
  LIKWID_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases a held capability.
#define LIKWID_RELEASE(...) \
  LIKWID_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LIKWID_RELEASE_SHARED(...) \
  LIKWID_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability only when returning `ret`.
#define LIKWID_TRY_ACQUIRE(ret, ...) \
  LIKWID_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function must NOT be called with the capability held (non-reentrant
/// locks; prevents self-deadlock).
#define LIKWID_EXCLUDES(...) LIKWID_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held here without acquiring it
/// (runtime-verified handoffs the checker cannot see).
#define LIKWID_ASSERT_CAPABILITY(x) \
  LIKWID_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define LIKWID_RETURN_CAPABILITY(x) LIKWID_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions deliberately outside the analysis (document
/// WHY at every use site).
#define LIKWID_NO_THREAD_SAFETY_ANALYSIS \
  LIKWID_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace likwid::util {

/// std::mutex with capability annotations: anything LIKWID_GUARDED_BY one
/// of these is compile-time checked under Clang.
class LIKWID_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LIKWID_ACQUIRE() { mutex_.lock(); }
  void unlock() LIKWID_RELEASE() { mutex_.unlock(); }
  bool try_lock() LIKWID_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// std::shared_mutex with capability annotations (exclusive + shared).
class LIKWID_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() LIKWID_ACQUIRE() { mutex_.lock(); }
  void unlock() LIKWID_RELEASE() { mutex_.unlock(); }
  void lock_shared() LIKWID_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() LIKWID_RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

/// Scoped exclusive lock on a util::Mutex (std::lock_guard equivalent).
class LIKWID_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) LIKWID_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() LIKWID_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Scoped exclusive lock on a util::SharedMutex (std::unique_lock held for
/// the full scope).
class LIKWID_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mutex) LIKWID_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~ExclusiveLock() LIKWID_RELEASE() { mutex_.unlock(); }
  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Scoped shared (reader) lock on a util::SharedMutex.
class LIKWID_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mutex) LIKWID_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  // Generic release: a scoped capability's destructor releases whichever
  // mode its constructor acquired.
  ~SharedLock() LIKWID_RELEASE() { mutex_.unlock_shared(); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mutex_;
};

}  // namespace likwid::util
