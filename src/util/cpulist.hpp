// cpulist.hpp — parsing of processor-list expressions and skip masks as
// accepted by likwid-pin / likwid-perfctr on the command line:
//
//   "0-3"          -> {0,1,2,3}
//   "0,2,4"        -> {0,2,4}
//   "0-2,8,10-11"  -> {0,1,2,8,10,11}
//
// Skip masks ("-s 0x3") are binary patterns selecting which newly created
// threads the pin wrapper must leave unpinned (Intel OpenMP shepherds, MPI
// progress threads).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace likwid::util {

/// Parse a cpu-list expression into an ordered list of cpu ids.
/// Duplicates are preserved in order of appearance (pinning round-robin
/// relies on list order). Throws Error(kInvalidArgument) on syntax errors,
/// reversed ranges, or ids > 4095.
std::vector<int> parse_cpu_list(std::string_view text);

/// Render a cpu list in compact range form: {0,1,2,8,10,11} -> "0-2,8,10-11".
std::string format_cpu_list(const std::vector<int>& cpus);

/// A skip mask: bit i set means "do not pin the i-th created thread".
class SkipMask {
 public:
  SkipMask() = default;
  explicit SkipMask(std::uint64_t bits) : bits_(bits) {}

  /// Parse "0x3", "3", or binary pattern "0b11". Throws on malformed input.
  static SkipMask parse(std::string_view text);

  bool skips(unsigned thread_index) const noexcept {
    return thread_index < 64 && ((bits_ >> thread_index) & 1u) != 0;
  }
  std::uint64_t bits() const noexcept { return bits_; }

  /// Number of threads skipped among the first `n` created.
  unsigned count_skipped(unsigned n) const noexcept;

  bool operator==(const SkipMask&) const = default;

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace likwid::util
