// bitops.hpp — bit-field manipulation helpers used throughout the hardware
// simulation (cpuid register packing, MSR field extraction, APIC ID maths).
#pragma once

#include <bit>
#include <cstdint>

#include "util/status.hpp"

namespace likwid::util {

/// Extract bits [lo, hi] (inclusive) of `value`, shifted down to bit 0.
constexpr std::uint64_t extract_bits(std::uint64_t value, unsigned lo,
                                     unsigned hi) noexcept {
  const unsigned width = hi - lo + 1;
  if (width >= 64) return value >> lo;
  return (value >> lo) & ((std::uint64_t{1} << width) - 1);
}

/// Deposit `field` into bits [lo, hi] of `value`, returning the new value.
/// Bits of `field` beyond the destination width are discarded.
constexpr std::uint64_t deposit_bits(std::uint64_t value, unsigned lo,
                                     unsigned hi, std::uint64_t field) noexcept {
  const unsigned width = hi - lo + 1;
  const std::uint64_t mask =
      (width >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/// Test a single bit.
constexpr bool test_bit(std::uint64_t value, unsigned bit) noexcept {
  return ((value >> bit) & 1u) != 0;
}

/// Set or clear a single bit.
constexpr std::uint64_t assign_bit(std::uint64_t value, unsigned bit,
                                   bool on) noexcept {
  return on ? (value | (std::uint64_t{1} << bit))
            : (value & ~(std::uint64_t{1} << bit));
}

/// Number of bits needed to represent values in [0, count-1]; 0 for count<=1.
/// This is the field-width function used by x86 APIC topology enumeration
/// (cpuid leaf 0xB "shift" values): width(6) == 3, width(2) == 1.
constexpr unsigned field_width(std::uint32_t count) noexcept {
  if (count <= 1) return 0;
  return static_cast<unsigned>(std::bit_width(count - 1));
}

/// Round up to the next power of two (minimum 1).
constexpr std::uint64_t next_pow2(std::uint64_t value) noexcept {
  return std::bit_ceil(value == 0 ? 1 : value);
}

constexpr bool is_pow2(std::uint64_t value) noexcept {
  return value != 0 && std::has_single_bit(value);
}

/// Integer log2 of a power of two; throws for non-powers.
inline unsigned log2_exact(std::uint64_t value) {
  LIKWID_REQUIRE(is_pow2(value), "log2_exact: value is not a power of two");
  return static_cast<unsigned>(std::countr_zero(value));
}

}  // namespace likwid::util
