// alloc_hook.cpp — counting global operator new/delete (see alloc_hook.hpp
// for why this TU is excluded from likwid_core and linked only into the
// allocation regression test and the metric pipeline bench).
#include "util/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  // malloc(0) may return null; normalize like the default operator new.
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) & ~(align - 1);
  void* p = std::aligned_alloc(align, rounded ? rounded : align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

namespace likwid::util {

AllocCounts alloc_counts() noexcept {
  AllocCounts c;
  c.allocations = g_allocations.load(std::memory_order_relaxed);
  c.frees = g_frees.load(std::memory_order_relaxed);
  c.bytes = g_bytes.load(std::memory_order_relaxed);
  return c;
}

}  // namespace likwid::util

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
