// status.hpp — error handling primitives for the LIKWID reproduction.
//
// The library throws `likwid::Error` (with a category) at public API
// boundaries; internal code may also use `Result<T>` where failure is an
// expected outcome rather than a programming error.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace likwid {

/// Coarse error categories, used by tests and tools to branch on failure
/// kinds without string matching.
enum class ErrorCode {
  kInvalidArgument,   ///< malformed user input (event name, cpu list, ...)
  kNotFound,          ///< entity does not exist (cpu id, region, msr, ...)
  kPermission,        ///< access denied (msr write to read-only register)
  kUnsupported,       ///< operation not available on this architecture
  kResourceExhausted, ///< no free counter / slot
  kInvalidState,      ///< API misuse (stop before start, double init, ...)
  kInternal,          ///< invariant violation inside the library
  kUnavailable,       ///< resource failed / implausible (flaky msr, stale
                      ///< or pegged counters) — retrying may help
  kDeadlineExceeded,  ///< operation gave up at its time budget
};

/// Human-readable name of an error code ("InvalidArgument", ...).
std::string_view to_string(ErrorCode code) noexcept;

/// Exception type thrown by all likwid-repro libraries.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(to_string(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

[[noreturn]] inline void throw_error(ErrorCode code, const std::string& msg) {
  throw Error(code, msg);
}

/// Lightweight expected-like result for internal plumbing where failure is
/// a normal outcome. Holds either a value or an Error description.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(ErrorCode code, std::string message)
      : data_(Failure{code, std::move(message)}) {}

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  /// Access the value; throws the stored error if in failure state.
  T& value() {
    if (!ok()) {
      const auto& f = std::get<Failure>(data_);
      throw_error(f.code, f.message);
    }
    return std::get<T>(data_);
  }
  const T& value() const {
    if (!ok()) {
      const auto& f = std::get<Failure>(data_);
      throw_error(f.code, f.message);
    }
    return std::get<T>(data_);
  }

  ErrorCode code() const {
    if (ok()) throw_error(ErrorCode::kInternal, "Result holds a value");
    return std::get<Failure>(data_).code;
  }
  const std::string& message() const {
    if (ok()) throw_error(ErrorCode::kInternal, "Result holds a value");
    return std::get<Failure>(data_).message;
  }

 private:
  struct Failure {
    ErrorCode code;
    std::string message;
  };
  std::variant<T, Failure> data_;
};

}  // namespace likwid

/// Precondition check macro: throws kInvalidArgument on failure.
#define LIKWID_REQUIRE(cond, msg)                                         \
  do {                                                                    \
    if (!(cond))                                                          \
      ::likwid::throw_error(::likwid::ErrorCode::kInvalidArgument, (msg)); \
  } while (false)

/// Internal invariant check macro: throws kInternal on failure.
#define LIKWID_ASSERT(cond, msg)                                     \
  do {                                                               \
    if (!(cond))                                                     \
      ::likwid::throw_error(::likwid::ErrorCode::kInternal, (msg)); \
  } while (false)
