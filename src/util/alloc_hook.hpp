// alloc_hook.hpp — test-only counting allocator hook.
//
// The zero-allocation contract of the sampling hot path ("the steady-state
// IntervalSampler -> Sample -> sink path performs zero allocations after
// warm-up") needs a witness, not a promise. alloc_hook.cpp replaces the
// global operator new/delete with counting pass-throughs; alloc_counts()
// reads the process-wide tally. The .cpp is deliberately NOT part of
// likwid_core — only the allocation regression test and the metric
// pipeline bench link it (CMake target `likwid_alloc_hook`), so production
// binaries keep the stock allocator.
//
// Under ASan/TSan the sanitizer runtime allocates behind the program's
// back, so counts are not attributable to the code under test; gate with
// LIKWID_UNDER_SANITIZER and skip.
#pragma once

#include <cstdint>

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LIKWID_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#ifndef LIKWID_UNDER_SANITIZER
#define LIKWID_UNDER_SANITIZER 1
#endif
#endif
#ifndef LIKWID_UNDER_SANITIZER
#define LIKWID_UNDER_SANITIZER 0
#endif

namespace likwid::util {

/// Process-wide allocation tally since program start.
struct AllocCounts {
  std::uint64_t allocations = 0;  ///< operator new calls
  std::uint64_t frees = 0;        ///< operator delete calls
  std::uint64_t bytes = 0;        ///< total bytes requested from new
};

/// Snapshot the tally. Only resolves in binaries that link
/// `likwid_alloc_hook`; measure a region by differencing two snapshots.
AllocCounts alloc_counts() noexcept;

}  // namespace likwid::util
