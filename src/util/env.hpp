// env.hpp — an explicit environment-variable map.
//
// The real likwid-pin communicates with its LD_PRELOAD wrapper library
// through environment variables (core list, skip mask, thread-model type).
// The simulation models a process environment as a value type so tests can
// construct arbitrary environments without mutating the host process.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace likwid::util {

/// Ordered key/value environment, value-semantic.
class Environment {
 public:
  Environment() = default;

  void set(std::string key, std::string value) {
    vars_[std::move(key)] = std::move(value);
  }
  void unset(const std::string& key) { vars_.erase(key); }

  bool has(const std::string& key) const { return vars_.count(key) != 0; }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = vars_.find(key);
    if (it == vars_.end()) return std::nullopt;
    return it->second;
  }

  /// Get with default.
  std::string get_or(const std::string& key, std::string_view fallback) const {
    const auto v = get(key);
    return v ? *v : std::string(fallback);
  }

  const std::map<std::string, std::string>& vars() const { return vars_; }

  bool operator==(const Environment&) const = default;

 private:
  std::map<std::string, std::string> vars_;
};

}  // namespace likwid::util
