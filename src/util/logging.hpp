// logging.hpp — minimal leveled logging to stderr, disabled by default so
// library users (and benchmarks) see clean output. Tools enable kInfo.
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace likwid::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one log line (used by the LIKWID_LOG macro).
void log_message(LogLevel level, const std::string& message);

/// Rate limiter for log sites that can fire per-sample or per-retry (the
/// transport give-up path, per-node fault warnings): the first occurrence
/// and then every `every`-th one pass, the rest are suppressed but still
/// counted. Thread-safe; one instance per log site, shared by whichever
/// threads hit it.
class LogRateLimiter {
 public:
  explicit LogRateLimiter(std::uint64_t every) noexcept : every_(every) {}

  /// True when this occurrence should be logged. `occurrences()` names the
  /// running total, so a passing site can report how many were suppressed.
  bool tick() noexcept {
    const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
    return every_ == 0 || n % every_ == 0;
  }

  std::uint64_t occurrences() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  const std::uint64_t every_;
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace likwid::util

#define LIKWID_LOG(level, expr)                                             \
  do {                                                                      \
    if (static_cast<int>(level) >=                                          \
        static_cast<int>(::likwid::util::log_level())) {                    \
      std::ostringstream likwid_log_oss;                                    \
      likwid_log_oss << expr;                                               \
      ::likwid::util::log_message(level, likwid_log_oss.str());             \
    }                                                                       \
  } while (false)

#define LIKWID_DEBUG(expr) LIKWID_LOG(::likwid::util::LogLevel::kDebug, expr)
#define LIKWID_INFO(expr) LIKWID_LOG(::likwid::util::LogLevel::kInfo, expr)
#define LIKWID_WARN(expr) LIKWID_LOG(::likwid::util::LogLevel::kWarn, expr)
