// logging.hpp — minimal leveled logging to stderr, disabled by default so
// library users (and benchmarks) see clean output. Tools enable kInfo.
#pragma once

#include <sstream>
#include <string>

namespace likwid::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one log line (used by the LIKWID_LOG macro).
void log_message(LogLevel level, const std::string& message);

}  // namespace likwid::util

#define LIKWID_LOG(level, expr)                                             \
  do {                                                                      \
    if (static_cast<int>(level) >=                                          \
        static_cast<int>(::likwid::util::log_level())) {                    \
      std::ostringstream likwid_log_oss;                                    \
      likwid_log_oss << expr;                                               \
      ::likwid::util::log_message(level, likwid_log_oss.str());             \
    }                                                                       \
  } while (false)

#define LIKWID_DEBUG(expr) LIKWID_LOG(::likwid::util::LogLevel::kDebug, expr)
#define LIKWID_INFO(expr) LIKWID_LOG(::likwid::util::LogLevel::kInfo, expr)
#define LIKWID_WARN(expr) LIKWID_LOG(::likwid::util::LogLevel::kWarn, expr)
