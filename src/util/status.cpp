#include "util/status.hpp"

namespace likwid {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kPermission: return "Permission";
    case ErrorCode::kUnsupported: return "Unsupported";
    case ErrorCode::kResourceExhausted: return "ResourceExhausted";
    case ErrorCode::kInvalidState: return "InvalidState";
    case ErrorCode::kInternal: return "Internal";
    case ErrorCode::kUnavailable: return "Unavailable";
    case ErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace likwid
