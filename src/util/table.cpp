#include "util/table.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace likwid::util {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LIKWID_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  LIKWID_REQUIRE(cells.size() == headers_.size(),
                 "row arity does not match header arity");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&widths]() {
    std::string line = "+";
    for (const std::size_t w : widths) {
      line += std::string(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  const auto emit_row = [&widths](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += ' ';
      line += cells[c];
      line += std::string(widths[c] - cells[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = rule();
  out += emit_row(headers_);
  out += rule();
  for (const auto& row : rows_) out += emit_row(row);
  out += rule();
  return out;
}

std::string separator_line(std::size_t n) { return std::string(n, '-') + "\n"; }

std::string star_line(std::size_t n) { return std::string(n, '*') + "\n"; }

}  // namespace likwid::util
