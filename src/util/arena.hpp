// arena.hpp — monotonic chunk allocator behind the reusable result
// storage.
//
// The steady-state sampling path refills the same ResultTable shape every
// interval; what changes per refill is only the numbers. An Arena gives
// that shape a home that is allocated once and rewound with reset():
// blocks are retained across resets, so after the first fill every
// subsequent refill of the same shape touches the allocator not at all.
// ArenaAllocator is the std::allocator-shaped adapter; default-constructed
// (arena == nullptr) it falls back to the heap, which keeps arena-typed
// containers usable as ordinary value types everywhere a one-shot table
// is built.
//
// Thread-safety: none. An Arena and every container allocated from it
// belong to one consumer (a TimelineStreamer, a Session's render scratch);
// that consumer is single-threaded by its own contract.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace likwid::util {

class Arena {
 public:
  /// `block_bytes` sizes the chunks the arena grows by; requests larger
  /// than a block get a dedicated block of exactly their size.
  explicit Arena(std::size_t block_bytes = 4096)
      : block_bytes_(block_bytes ? block_bytes : 4096) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (a power of two). Grows by a
  /// new block only when no retained block has room — the warm-up cost the
  /// refill paths pay once.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    while (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= b.size) {
        offset_ = aligned + bytes;
        allocated_ += bytes;
        return b.data.get() + aligned;
      }
      ++block_;
      offset_ = 0;
    }
    Block b;
    b.size = bytes > block_bytes_ ? bytes : block_bytes_;
    b.data.reset(new std::byte[b.size]);
    blocks_.push_back(std::move(b));
    block_ = blocks_.size() - 1;
    offset_ = bytes;
    allocated_ += bytes;
    // A fresh block is aligned for any fundamental type by operator new[].
    return blocks_.back().data.get();
  }

  /// Rewind to empty, RETAINING every block — the whole point: the next
  /// fill of the same shape allocates nothing.
  void reset() noexcept {
    block_ = 0;
    offset_ = 0;
    allocated_ = 0;
  }

  /// Bytes handed out since the last reset (diagnostics / tests).
  std::size_t bytes_allocated() const noexcept { return allocated_; }
  /// Bytes of retained block capacity.
  std::size_t bytes_capacity() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   ///< index of the block being bumped
  std::size_t offset_ = 0;  ///< bump cursor inside that block
  std::size_t allocated_ = 0;
  std::size_t block_bytes_;
};

/// std::allocator-shaped adapter. With an arena, allocation bumps and
/// deallocation is a no-op (memory returns on Arena::reset()); without one
/// (default construction) it is a plain heap allocator, so containers
/// typed on ArenaAllocator stay ordinary value types in one-shot code.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  // Containers adopt the source's allocator on copy/move/swap, so a row
  // copied out of an arena-backed table correctly drags its arena along.
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT(google-explicit-constructor)
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_ == nullptr) return static_cast<T*>(::operator new(bytes));
    return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
    // Arena memory returns in bulk on reset().
  }

  Arena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return !(a == b);
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace likwid::util
