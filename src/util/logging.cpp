#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace likwid::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[likwid:%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace likwid::util
