#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

namespace likwid::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_trimmed(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (const auto& part : split(text, sep)) {
    const std::string_view t = trim(part);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  int base = 10;
  if (starts_with(text, "0x") || starts_with(text, "0X")) {
    base = 16;
    text.remove_prefix(2);
    if (text.empty()) return std::nullopt;
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, base);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_size_bytes(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  // Split off the longest trailing run of unit letters.
  std::size_t digits_end = text.size();
  while (digits_end > 0 &&
         std::isalpha(static_cast<unsigned char>(text[digits_end - 1]))) {
    --digits_end;
  }
  const std::string_view number = trim(text.substr(0, digits_end));
  const std::string unit = to_lower(text.substr(digits_end));
  std::uint64_t scale = 1;
  if (unit.empty() || unit == "b") {
    scale = 1;
  } else if (unit == "k" || unit == "kb") {
    scale = 1024ull;
  } else if (unit == "m" || unit == "mb") {
    scale = 1024ull * 1024;
  } else if (unit == "g" || unit == "gb") {
    scale = 1024ull * 1024 * 1024;
  } else {
    return std::nullopt;
  }
  const auto value = parse_u64(number);
  if (!value) return std::nullopt;
  if (*value != 0 &&
      *value > std::numeric_limits<std::uint64_t>::max() / scale) {
    return std::nullopt;  // overflow
  }
  return *value * scale;
}

std::optional<double> parse_duration_seconds(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  // Split off the longest trailing run of unit letters (same convention
  // as parse_size_bytes).
  std::size_t digits_end = text.size();
  while (digits_end > 0 &&
         std::isalpha(static_cast<unsigned char>(text[digits_end - 1]))) {
    --digits_end;
  }
  const std::string_view number = trim(text.substr(0, digits_end));
  const std::string unit = to_lower(text.substr(digits_end));
  double scale = 1.0;
  if (unit.empty() || unit == "s") {
    scale = 1.0;
  } else if (unit == "us") {
    scale = 1e-6;
  } else if (unit == "ms") {
    scale = 1e-3;
  } else if (unit == "m" || unit == "min") {
    scale = 60.0;
  } else if (unit == "h") {
    scale = 3600.0;
  } else {
    return std::nullopt;
  }
  const auto value = parse_double(number);
  if (!value || !std::isfinite(*value) || *value < 0) return std::nullopt;
  return *value * scale;
}

std::string format_metric(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

std::string format_count(double value) {
  if (std::isfinite(value) && value >= 0 && value < 1e6 &&
      value == std::floor(value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  return format_metric(value);
}

std::string format_size(std::uint64_t bytes) {
  // likwid-topology prints cache sizes like "32 kB", "256 kB", "12 MB".
  constexpr std::uint64_t kKiB = 1024;
  constexpr std::uint64_t kMiB = 1024 * kKiB;
  constexpr std::uint64_t kGiB = 1024 * kMiB;
  char buf[32];
  if (bytes >= kGiB && bytes % kGiB == 0) {
    std::snprintf(buf, sizeof(buf), "%llu GB",
                  static_cast<unsigned long long>(bytes / kGiB));
  } else if (bytes >= kMiB && bytes % kMiB == 0) {
    std::snprintf(buf, sizeof(buf), "%llu MB",
                  static_cast<unsigned long long>(bytes / kMiB));
  } else if (bytes >= kKiB && bytes % kKiB == 0) {
    std::snprintf(buf, sizeof(buf), "%llu kB",
                  static_cast<unsigned long long>(bytes / kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace likwid::util
