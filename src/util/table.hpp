// table.hpp — ASCII table rendering in the exact style of likwid-perfctr's
// result listings:
//
//   +-------------+-----------+------------+
//   | Metric      | core 0    | core 1     |
//   +-------------+-----------+------------+
//   | Runtime [s] | 0.0100882 | 0.00996574 |
//   +-------------+-----------+------------+
#pragma once

#include <string>
#include <vector>

namespace likwid::util {

/// A simple row/column text table with a header row and box-drawing in
/// '+','-','|' characters, matching the paper's listings.
class AsciiTable {
 public:
  /// Create a table with the given column headers.
  explicit AsciiTable(std::vector<std::string> headers);

  /// Append a data row; must have exactly as many cells as headers.
  /// Throws Error(kInvalidArgument) on arity mismatch.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_columns() const noexcept { return headers_.size(); }

  /// Render the table including trailing newline.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// A horizontal separator line of '-' characters, width `n` (likwid prints
/// 61-dash separators around tool headers).
std::string separator_line(std::size_t n = 61);

/// A line of '*' characters used by likwid-topology section banners.
std::string star_line(std::size_t n = 61);

}  // namespace likwid::util
