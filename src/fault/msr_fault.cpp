#include "fault/msr_fault.hpp"

#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::fault {

namespace {

std::uint64_t key_of(int cpu, std::uint32_t reg) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cpu)) << 32) |
         reg;
}

}  // namespace

MsrFaultDevice::MsrFaultDevice(const hwsim::MachineSpec& spec,
                               MsrFaultMode mode, std::uint64_t onset_step)
    : mode_(mode), onset_(onset_step) {
  namespace msr = hwsim::msr;
  const auto add_range = [this](std::uint32_t base, int count) {
    for (int i = 0; i < count; ++i) {
      counter_regs_.insert(base + static_cast<std::uint32_t>(i));
    }
  };
  if (spec.vendor == hwsim::Vendor::kIntel) {
    add_range(msr::kPmc0, spec.pmu.num_gp_counters);
    add_range(msr::kFixedCtr0, spec.pmu.num_fixed_counters);
    if (spec.pmu.num_uncore_counters > 0) {
      add_range(msr::kUncPmc0, spec.pmu.num_uncore_counters);
      counter_regs_.insert(msr::kUncFixedCtr0);
    }
  } else {
    add_range(msr::kAmdPerfCtr0, spec.pmu.num_gp_counters);
  }
  counter_regs_.insert(msr::kTsc);
}

std::optional<std::uint64_t> MsrFaultDevice::on_read(int cpu,
                                                     std::uint32_t reg,
                                                     std::uint64_t value) {
  if (!armed_ || mode_ == MsrFaultMode::kNone) return std::nullopt;
  switch (mode_) {
    case MsrFaultMode::kFail:
      ++faults_;
      throw_error(ErrorCode::kUnavailable,
                  util::strprintf("injected msr read failure: cpu %d msr 0x%X",
                                  cpu, reg));
    case MsrFaultMode::kTimeout:
      ++faults_;
      throw_error(
          ErrorCode::kDeadlineExceeded,
          util::strprintf("injected msr read timeout: cpu %d msr 0x%X", cpu,
                          reg));
    case MsrFaultMode::kStale: {
      if (!is_counter(reg)) return std::nullopt;
      ++faults_;
      const auto [it, inserted] = frozen_.emplace(key_of(cpu, reg), value);
      (void)inserted;
      return it->second;
    }
    case MsrFaultMode::kSaturate:
      if (!is_counter(reg)) return std::nullopt;
      ++faults_;
      return ~std::uint64_t{0};
    case MsrFaultMode::kNone:
      break;
  }
  return std::nullopt;
}

}  // namespace likwid::fault
