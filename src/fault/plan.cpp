#include "fault/plan.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::fault {

namespace {

// splitmix64 (Steele/Lea/Flood) — the same stateless mixer the hwsim layer
// uses for deterministic per-entity draws. Full 64-bit avalanche, so
// chaining ids through it gives independent-looking streams per entity.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t hash3(std::uint64_t seed, std::uint64_t id, std::uint64_t salt) {
  return splitmix64(splitmix64(splitmix64(seed) ^ id) ^ salt);
}

/// Uniform draw in [0, 1) from a hash — 53 mantissa bits, exact halving.
double unit_draw(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Salts separating the independent draw streams of one plan.
constexpr std::uint64_t kSaltMsrMode = 0x6d73722d6d6f6465ull;   // "msr-mode"
constexpr std::uint64_t kSaltOnset = 0x6f6e7365742d7374ull;     // "onset-st"
constexpr std::uint64_t kSaltStall = 0x7374616c6c2d6e64ull;     // "stall-nd"
constexpr std::uint64_t kSaltCrash = 0x63726173682d7774ull;     // "crash-wt"
constexpr std::uint64_t kSaltJitter = 0x6a69747465722d77ull;    // "jitter-w"

[[noreturn]] void parse_fail(std::string_view text, const std::string& why) {
  throw_error(ErrorCode::kInvalidArgument,
              "fault plan '" + std::string(text) + "': " + why);
}

double parse_rate(std::string_view text, std::string_view key,
                  const std::string& value) {
  std::size_t consumed = 0;
  double rate = 0;
  try {
    rate = std::stod(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != value.size() || !std::isfinite(rate) || rate < 0 ||
      rate > 1) {
    parse_fail(text, std::string(key) + " wants a rate in [0, 1], got '" +
                         value + "'");
  }
  return rate;
}

std::uint64_t parse_count(std::string_view text, std::string_view key,
                          const std::string& value) {
  std::size_t consumed = 0;
  unsigned long long count = 0;
  try {
    count = std::stoull(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != value.size()) {
    parse_fail(text, std::string(key) + " wants a non-negative integer, got '" +
                         value + "'");
  }
  return count;
}

}  // namespace

std::string_view to_string(MsrFaultMode mode) noexcept {
  switch (mode) {
    case MsrFaultMode::kNone: return "none";
    case MsrFaultMode::kFail: return "msr-fail";
    case MsrFaultMode::kTimeout: return "msr-timeout";
    case MsrFaultMode::kStale: return "msr-stale";
    case MsrFaultMode::kSaturate: return "msr-saturate";
  }
  return "unknown";
}

FaultPlan FaultPlan::parse(std::string_view text) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos) {
    parse_fail(text, "expected '<seed>:<key>=<value>[;...]'");
  }
  FaultPlan plan;
  plan.seed_ = parse_count(text, "seed", std::string(text.substr(0, colon)));

  std::string_view rest = text.substr(colon + 1);
  if (rest.empty()) parse_fail(text, "empty fault spec after seed");
  while (!rest.empty()) {
    const auto semi = rest.find(';');
    const std::string_view item =
        semi == std::string_view::npos ? rest : rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (item.empty()) parse_fail(text, "empty clause (stray ';')");
    const auto eq = item.find('=');
    if (eq == std::string_view::npos) {
      parse_fail(text, "clause '" + std::string(item) + "' lacks '='");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string value{item.substr(eq + 1)};
    if (key == "msr-fail") {
      plan.msr_fail_ = parse_rate(text, key, value);
    } else if (key == "msr-timeout") {
      plan.msr_timeout_ = parse_rate(text, key, value);
    } else if (key == "msr-stale") {
      plan.msr_stale_ = parse_rate(text, key, value);
    } else if (key == "msr-saturate") {
      plan.msr_saturate_ = parse_rate(text, key, value);
    } else if (key == "stall") {
      plan.stall_ = parse_rate(text, key, value);
    } else if (key == "crash") {
      plan.crashes_ = static_cast<int>(parse_count(text, key, value));
    } else if (key == "stall-us") {
      plan.stall_us_ = parse_count(text, key, value);
    } else if (key == "slow-consumer-us") {
      plan.slow_consumer_us_ = parse_count(text, key, value);
    } else if (key == "onset") {
      plan.onset_window_ = parse_count(text, key, value);
      if (plan.onset_window_ == 0) {
        parse_fail(text, "onset must be >= 1");
      }
    } else {
      parse_fail(text, "unknown key '" + std::string(key) + "'");
    }
  }
  const double msr_total =
      plan.msr_fail_ + plan.msr_timeout_ + plan.msr_stale_ + plan.msr_saturate_;
  if (msr_total > 1.0) {
    parse_fail(text, util::strprintf(
                         "msr-* rates sum to %.3f > 1 (modes are mutually "
                         "exclusive per node)",
                         msr_total));
  }
  return plan;
}

bool FaultPlan::has_faults() const noexcept {
  return msr_fail_ > 0 || msr_timeout_ > 0 || msr_stale_ > 0 ||
         msr_saturate_ > 0 || stall_ > 0 || crashes_ > 0 ||
         slow_consumer_us_ > 0;
}

NodeFault FaultPlan::node_fault(int machine_id) const {
  NodeFault fault;
  const auto id = static_cast<std::uint64_t>(machine_id);
  // One uniform draw, cut into cumulative mode ranges: [0, fail) → kFail,
  // [fail, fail+timeout) → kTimeout, … — mutually exclusive by
  // construction, and each mode's population hits its rate in expectation.
  const double draw = unit_draw(hash3(seed_, id, kSaltMsrMode));
  double cut = msr_fail_;
  if (draw < cut) {
    fault.msr = MsrFaultMode::kFail;
  } else if (draw < (cut += msr_timeout_)) {
    fault.msr = MsrFaultMode::kTimeout;
  } else if (draw < (cut += msr_stale_)) {
    fault.msr = MsrFaultMode::kStale;
  } else if (draw < (cut += msr_saturate_)) {
    fault.msr = MsrFaultMode::kSaturate;
  }
  if (fault.msr != MsrFaultMode::kNone) {
    fault.onset_step =
        1 + hash3(seed_, id, kSaltOnset) % onset_window_;
  }
  fault.stall =
      stall_ > 0 && unit_draw(hash3(seed_, id, kSaltStall)) < stall_;
  return fault;
}

std::vector<int> FaultPlan::faulted_nodes(int num_machines) const {
  std::vector<int> out;
  for (int id = 0; id < num_machines; ++id) {
    if (node_fault(id).msr != MsrFaultMode::kNone) out.push_back(id);
  }
  return out;
}

std::vector<std::uint64_t> FaultPlan::crash_steps(
    int worker, int num_workers, std::uint64_t total_steps) const {
  std::vector<std::uint64_t> steps;
  if (num_workers <= 0 || total_steps < 2) return steps;
  for (int c = 0; c < crashes_; ++c) {
    const std::uint64_t h =
        hash3(seed_, static_cast<std::uint64_t>(c), kSaltCrash);
    // Crash c is owned by one deterministic worker and lands in a step of
    // [1, total_steps) — never step 0, so each worker finishes a full first
    // sweep before its first injected restart.
    if (static_cast<int>(h % static_cast<std::uint64_t>(num_workers)) !=
        worker) {
      continue;
    }
    steps.push_back(1 + splitmix64(h) % (total_steps - 1));
  }
  std::sort(steps.begin(), steps.end());
  return steps;
}

double FaultPlan::backoff_jitter(int worker, int restart) const {
  const std::uint64_t id = (static_cast<std::uint64_t>(worker) << 32) |
                           static_cast<std::uint64_t>(restart);
  return unit_draw(hash3(seed_, id, kSaltJitter));
}

std::string FaultPlan::describe() const {
  std::string out = "seed " + std::to_string(seed_) + ":";
  const auto rate = [&out](const char* key, double r) {
    if (r > 0) out += util::strprintf(" %s=%.3g", key, r);
  };
  rate("msr-fail", msr_fail_);
  rate("msr-timeout", msr_timeout_);
  rate("msr-stale", msr_stale_);
  rate("msr-saturate", msr_saturate_);
  rate("stall", stall_);
  if (crashes_ > 0) out += " crash=" + std::to_string(crashes_);
  if (slow_consumer_us_ > 0) {
    out += " slow-consumer-us=" + std::to_string(slow_consumer_us_);
  }
  if (!has_faults()) out += " (no faults)";
  return out;
}

}  // namespace likwid::fault
