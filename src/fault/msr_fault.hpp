// msr_fault.hpp — the flaky-MSR device of the fault layer.
//
// An MsrFaultDevice sits on the hwsim::MsrRegisterFile read path (via
// MsrReadInterposer) and reproduces the hardware failure modes a fleet
// monitor actually meets: reads that error out (the /dev/cpu/*/msr EIO
// analog), reads that hang past their deadline, counters that silently
// stop counting (stale), and counters pegged at all-ones (saturated).
// The device is armed per sampling step by its owner — faults never fire
// before the plan's onset step, so every node first proves it can produce
// healthy samples.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "fault/plan.hpp"
#include "hwsim/machine_spec.hpp"
#include "hwsim/msr.hpp"

namespace likwid::fault {

class MsrFaultDevice final : public hwsim::MsrReadInterposer {
 public:
  /// A device for one node: `mode` fires from sampling step `onset_step`
  /// on. The counter-register set is copied out of `spec` (no reference is
  /// kept). Like the register file it interposes, the device is confined
  /// to the thread currently stepping the node — no locking.
  MsrFaultDevice(const hwsim::MachineSpec& spec, MsrFaultMode mode,
                 std::uint64_t onset_step);

  /// Arm/disarm for the step about to run. Owners call this at the top of
  /// every sampling step; the device is armed while step >= onset_step.
  void begin_step(std::uint64_t step) noexcept { armed_ = step >= onset_; }

  std::optional<std::uint64_t> on_read(int cpu, std::uint32_t reg,
                                       std::uint64_t value) override;

  MsrFaultMode mode() const noexcept { return mode_; }
  bool armed() const noexcept { return armed_; }
  std::uint64_t onset_step() const noexcept { return onset_; }

  /// Reads corrupted or failed so far (diagnostics / health accounting).
  std::uint64_t faults_injected() const noexcept { return faults_; }

 private:
  bool is_counter(std::uint32_t reg) const noexcept {
    return counter_regs_.count(reg) != 0;
  }

  const MsrFaultMode mode_;
  const std::uint64_t onset_;
  bool armed_ = false;
  std::uint64_t faults_ = 0;
  /// The data registers (PMC/fixed/uncore/AMD counters) of the part —
  /// the only ones kStale/kSaturate corrupt; control registers stay sane
  /// so programming the PMU keeps working, exactly like real stuck
  /// counters.
  std::unordered_set<std::uint32_t> counter_regs_;
  /// kStale: value each (cpu, reg) froze at, captured lazily on the first
  /// armed read so the freeze point is the counter's real running value
  /// (freezing at 0 would look like a wrap to the delta logic instead).
  std::unordered_map<std::uint64_t, std::uint64_t> frozen_;
};

}  // namespace likwid::fault
