// plan.hpp — the deterministic fault model of the monitoring fleet.
//
// On production fleets node-level hardware flakiness is the norm, not the
// exception (LIKWID Monitoring Stack, Röhl et al. 2017), and HPM data is
// only trustworthy when its failure modes are visible (best-practices
// paper, Treibig et al. 2012). A FaultPlan makes those failure modes a
// first-class, reproducible input: one seed plus a small spec string fully
// determines WHICH nodes develop WHICH hardware fault at WHICH sampling
// step, which workers crash when, and how hard the transport consumer is
// slowed — so a chaos run is exactly as replayable as a healthy one.
//
// Spec grammar (the `--fault-plan=<seed>:<spec>` flag of likwid-agent):
//
//   plan  := <seed> ":" fault (";" fault)*
//   fault := "msr-fail" "=" rate        // MSR reads throw kUnavailable
//          | "msr-timeout" "=" rate     // MSR reads throw kDeadlineExceeded
//          | "msr-stale" "=" rate       // counter MSRs freeze at onset
//          | "msr-saturate" "=" rate    // counter MSRs peg at all-ones
//          | "stall" "=" rate           // node's sampler stalls every step
//          | "crash" "=" count          // worker-thread crashes injected
//          | "stall-us" "=" micros      // stall duration  (default 200)
//          | "slow-consumer-us" "=" micros // aggregation delay per drain
//          | "onset" "=" steps          // node fault onset window (def. 8)
//
// A `rate` in [0, 1] is the per-node probability of developing that fault;
// the MSR modes are mutually exclusive per node (their rates must sum to
// <= 1). Node assignment, onset steps, crash placement and backoff jitter
// all derive from splitmix64 hashes of (seed, entity id) — no global RNG,
// no ordering sensitivity: the same plan sends the same faults to the same
// nodes no matter how many workers step the fleet.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace likwid::fault {

/// How a node's MSR device misbehaves once its fault onsets.
enum class MsrFaultMode {
  kNone,      ///< healthy device
  kFail,      ///< reads throw Error(kUnavailable) — the EIO analog
  kTimeout,   ///< reads throw Error(kDeadlineExceeded) — hung core
  kStale,     ///< counter registers freeze at their onset values
  kSaturate,  ///< counter registers read all-ones (pegged)
};

std::string_view to_string(MsrFaultMode mode) noexcept;

/// The fault assignment of one node, fully determined by (plan, node id).
struct NodeFault {
  MsrFaultMode msr = MsrFaultMode::kNone;
  /// Sampling step at which the MSR fault arms (>= 1: the node always
  /// produces at least one healthy sample, so quarantine is observable as
  /// a transition, not an initial state).
  std::uint64_t onset_step = 0;
  /// Whether this node's sampler stalls (sleeps stall_us) every step.
  bool stall = false;
};

class FaultPlan {
 public:
  /// Neutral plan: injects nothing. has_faults() is false.
  FaultPlan() = default;

  /// Parse `<seed>:<spec>` per the grammar above; throws
  /// Error(kInvalidArgument) naming the offending token on any error.
  static FaultPlan parse(std::string_view text);

  /// True when the plan can inject anything at all.
  bool has_faults() const noexcept;

  std::uint64_t seed() const noexcept { return seed_; }
  double msr_fail_rate() const noexcept { return msr_fail_; }
  double msr_timeout_rate() const noexcept { return msr_timeout_; }
  double msr_stale_rate() const noexcept { return msr_stale_; }
  double msr_saturate_rate() const noexcept { return msr_saturate_; }
  double stall_rate() const noexcept { return stall_; }
  int crashes() const noexcept { return crashes_; }
  std::uint64_t stall_us() const noexcept { return stall_us_; }
  std::uint64_t slow_consumer_us() const noexcept { return slow_consumer_us_; }
  std::uint64_t onset_window() const noexcept { return onset_window_; }

  /// The deterministic fault assignment of node `machine_id`.
  NodeFault node_fault(int machine_id) const;

  /// Ids in [0, num_machines) whose MSR device develops a fault under this
  /// plan, ascending — exactly the nodes a surviving fleet must quarantine.
  std::vector<int> faulted_nodes(int num_machines) const;

  /// Injected crash steps of worker `worker` when `num_workers` share
  /// `total_steps`, ascending (one entry per scheduled crash; a worker may
  /// draw several). Crashes land in steps [1, total_steps): never at step
  /// 0, so every worker completes its first sweep before the first injected
  /// restart.
  std::vector<std::uint64_t> crash_steps(int worker, int num_workers,
                                         std::uint64_t total_steps) const;

  /// Deterministic backoff jitter in [0, 1) for a worker's n-th restart.
  double backoff_jitter(int worker, int restart) const;

  /// One-line human description ("seed 7: msr-fail=0.05; crash=2"), used
  /// by logs and the agent banner.
  std::string describe() const;

 private:
  std::uint64_t seed_ = 0;
  double msr_fail_ = 0;
  double msr_timeout_ = 0;
  double msr_stale_ = 0;
  double msr_saturate_ = 0;
  double stall_ = 0;
  int crashes_ = 0;
  std::uint64_t stall_us_ = 200;
  std::uint64_t slow_consumer_us_ = 0;
  std::uint64_t onset_window_ = 8;
};

}  // namespace likwid::fault
