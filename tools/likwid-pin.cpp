// likwid-pin — enforce thread-core affinity on a threaded application from
// the outside (Section II-C of the paper).
//
// Usage:
//   likwid-pin [--machine KEY] -c 0-3 [-t gcc|intel|intel-mpi] [-s MASK]
//              [--threads N] [--cc icc|gcc] [--n LEN]
//
// Runs the OpenMP STREAM triad under the pin wrapper (the analog of
// `likwid-pin -c 0-3 ./a.out`), prints which thread went where and the
// resulting bandwidth, making the effect of pinning directly visible.
#include <iostream>

#include "core/likwid.hpp"
#include "tool_common.hpp"
#include "util/cpulist.hpp"
#include "util/table.hpp"
#include "workloads/openmp_model.hpp"
#include "workloads/stream.hpp"

int main(int argc, char** argv) {
  using namespace likwid;
  return tools::tool_main([&]() {
    const cli::ArgParser args(
        argc, argv,
        {"--machine", "--seed", "--enum", "-c", "-t", "-s", "--threads", "--cc", "--n"});
    if (args.has("-h") || args.has("--help") || !args.value("-c")) {
      std::cout << "Usage: likwid-pin -c CPULIST [-t gcc|intel|intel-mpi]\n"
                << "                  [-s SKIPMASK] [--threads N] [--cc "
                   "icc|gcc]\n"
                << tools::machine_help();
      return args.has("-h") || args.has("--help") ? 0 : 1;
    }

    const std::unique_ptr<api::Session> session =
        tools::make_session(args, "likwid-pin");
    const core::NodeTopology& topo = session->topology();

    core::PinConfig cfg;
    // "-c L:0-5" selects logical (topology-ordered) ids, Section V's
    // cpuset-style binding; plain lists remain physical os ids.
    cfg.cpu_list = core::parse_pin_cpu_expression(topo, *args.value("-c"));
    cfg.model = core::parse_thread_model(args.value_or("-t", "gcc"));
    cfg.skip = args.value("-s") ? util::SkipMask::parse(*args.value("-s"))
                                : core::default_skip_mask(cfg.model);

    const int threads = static_cast<int>(
        util::parse_u64(args.value_or("--threads",
                                      std::to_string(cfg.cpu_list.size())))
            .value_or(cfg.cpu_list.size()));

    // Environment round trip, as the real tool passes config to the
    // preloaded wrapper library.
    util::Environment env;
    cfg.to_environment(env);
    const core::PinConfig wrapper_cfg = core::PinConfig::from_environment(env);

    ossim::ThreadRuntime runtime(session->kernel().scheduler());
    core::PinWrapper wrapper(runtime, wrapper_cfg);

    const auto impl = cfg.model == core::ThreadModel::kIntel
                          ? workloads::OpenMpImpl::kIntel
                      : cfg.model == core::ThreadModel::kIntelMpi
                          ? workloads::OpenMpImpl::kIntelMpi
                          : workloads::OpenMpImpl::kGcc;
    const auto team = workloads::launch_openmp_team(runtime, impl, threads);

    std::cout << util::separator_line();
    std::cout << "[likwid-pin] cpu list: "
              << util::format_cpu_list(cfg.cpu_list)
              << "  skip mask: 0x" << std::hex << cfg.skip.bits() << std::dec
              << "\n";
    std::cout << "[likwid-pin] Main thread -> core "
              << runtime.thread(0).cpu << "\n";
    for (const int tid : team.worker_tids) {
      if (tid == 0) continue;
      std::cout << "[likwid-pin] Worker thread " << tid << " -> core "
                << runtime.thread(tid).cpu << "\n";
    }
    for (const int tid : team.service_tids) {
      std::cout << "[likwid-pin] Service thread " << tid
                << " -> not pinned (cpu " << runtime.thread(tid).cpu << ")\n";
    }
    std::cout << util::separator_line();

    workloads::StreamConfig scfg;
    scfg.array_length =
        util::parse_u64(args.value_or("--n", "20000000")).value_or(20000000);
    scfg.compiler = args.value_or("--cc", "icc") == "gcc"
                        ? workloads::gcc_profile()
                        : workloads::icc_profile();
    workloads::StreamTriad triad(scfg);
    workloads::Placement placement;
    placement.cpus = runtime.placement(team.worker_tids);
    const double seconds =
        run_workload(session->kernel(), triad, placement);
    std::cout << util::strprintf(
        "STREAM triad with %d threads: %.0f MB/s (runtime %.4f s)\n", threads,
        triad.reported_bandwidth_mbs(seconds), seconds);
    return 0;
  });
}
