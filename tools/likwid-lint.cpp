// likwid-lint — static validation of performance-group and metric
// definitions against a machine model, without programming a counter.
//
// The measurement layer only discovers a bad group definition when a tool
// tries to use it; likwid-lint proves the whole catalog sound (or names
// exactly what is wrong) at build time, so CI can reject a bad definition
// before it ships. Checks: event-set schedulability under the PMU's
// counter-slot budget, formulas referencing events the set does not
// count, events no formula consumes, division-by-possibly-zero formula
// paths, malformed or shadowed group names.
//
// Usage:
//   likwid-lint                        # lint every machine preset
//   likwid-lint --machine westmere-ep  # one machine's builtin catalog
//   likwid-lint --machine core2-quad --group FLOPS_DP
//   likwid-lint --strict               # warnings fail the lint too
//   likwid-lint --csv | --xml          # summary table via the sinks
//
// Exit status: 0 when the lint passes, 1 when it fails (any error, or —
// under --strict — any diagnostic at all).
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "cli/sinks.hpp"
#include "core/perf_groups.hpp"
#include "hwsim/arch.hpp"
#include "hwsim/presets.hpp"
#include "tool_common.hpp"

int main(int argc, char** argv) {
  using namespace likwid;
  return tools::tool_main([&]() {
    const cli::ArgParser args(argc, argv, {"--machine", "--group", "--out"});
    if (args.has("-h") || args.has("--help")) {
      std::cout
          << "Usage: likwid-lint [--machine KEY [--group NAME]] [--strict]\n"
          << "                   [--csv | --xml] [--out FILE]\n"
          << "Statically validates performance-group definitions against\n"
          << "a machine model (schedulability, undefined/unused events,\n"
          << "zero-division formula paths, group naming). Without\n"
          << "--machine, every preset machine's catalog is linted.\n"
          << "  --strict        warnings fail the lint too\n"
          << "  --csv / --xml   emit the summary table in that format\n"
          << "  --out FILE      also write the summary table to FILE\n"
          << tools::machine_help();
      return 0;
    }

    std::vector<analysis::Diagnostic> diags;
    std::size_t groups_linted = 0;
    std::size_t machines_linted = 0;
    if (const auto machine = args.value("--machine")) {
      const hwsim::MachineSpec spec = hwsim::presets::preset_by_key(*machine);
      const hwsim::Arch arch =
          hwsim::classify_arch(spec.vendor, spec.family, spec.model);
      machines_linted = 1;
      if (const auto group_name = args.value("--group")) {
        // find_group throws kNotFound for names outside the suite's
        // vocabulary and returns nullopt for groups this arch cannot
        // support — the latter is a lint failure, not a crash.
        const auto group = core::find_group(arch, *group_name);
        if (!group) {
          analysis::Diagnostic d;
          d.severity = analysis::Severity::kError;
          d.check = "schedulability";
          d.machine = *machine;
          d.group = *group_name;
          d.message = "group is not supported on " +
                      std::string(hwsim::to_string(arch)) +
                      " (no suitable native events)";
          diags.push_back(std::move(d));
        } else {
          groups_linted = 1;
          diags = analysis::lint_group(spec, *group, *machine);
        }
      } else {
        const auto groups = core::supported_groups(arch);
        groups_linted = groups.size();
        diags = analysis::lint_catalog(spec, groups, *machine);
      }
    } else {
      for (const auto& preset : hwsim::presets::all_presets()) {
        const hwsim::MachineSpec spec = preset.factory();
        const hwsim::Arch arch =
            hwsim::classify_arch(spec.vendor, spec.family, spec.model);
        groups_linted += core::supported_groups(arch).size();
        ++machines_linted;
      }
      diags = analysis::lint_all_machines();
    }

    const bool strict = args.has("--strict");
    const api::ResultTable table =
        analysis::report_table(diags, groups_linted, machines_linted);
    cli::SinkFormat format = cli::SinkFormat::kText;
    if (args.has("--csv")) format = cli::SinkFormat::kCsv;
    if (args.has("--xml")) format = cli::SinkFormat::kXml;
    const auto sink = cli::make_sink(format);

    if (format == cli::SinkFormat::kText) {
      std::cout << analysis::format_diagnostics(diags);
      std::cout << sink->measurement(table);
    } else {
      std::cout << sink->measurement(table);
      // Keep the per-finding detail visible next to machine-readable
      // summaries, but on stderr so the CSV/XML stream stays parseable.
      std::cerr << analysis::format_diagnostics(diags);
    }
    if (const auto out = args.value("--out")) {
      tools::write_file(*out, sink->measurement(table));
    }

    const bool failed = analysis::has_errors(diags, strict);
    std::cout << "likwid-lint: " << machines_linted << " machine(s), "
              << groups_linted << " group(s): "
              << count(diags, analysis::Severity::kError) << " error(s), "
              << count(diags, analysis::Severity::kWarning)
              << " warning(s)" << (strict ? " [strict]" : "") << " -> "
              << (failed ? "FAIL" : "OK") << "\n";
    return failed ? 1 : 0;
  });
}
