// tool_common.hpp — shared plumbing for the command-line tools: construct
// the simulated node from --machine (default: the paper's Westmere EP) and
// hold the kernel the tool operates on.
#pragma once

#include <fstream>
#include <iostream>
#include <memory>

#include "cli/args.hpp"
#include "hwsim/machine.hpp"
#include "hwsim/presets.hpp"
#include "ossim/kernel.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::tools {

struct ToolContext {
  std::unique_ptr<hwsim::SimMachine> machine;
  std::unique_ptr<ossim::SimKernel> kernel;
};

inline ToolContext make_context(const cli::ArgParser& args) {
  const std::string key = args.value_or("--machine", "westmere-ep");
  const std::uint64_t seed =
      util::parse_u64(args.value_or("--seed", "42")).value_or(42);
  hwsim::MachineSpec spec = hwsim::presets::preset_by_key(key);
  // --enum permutes the BIOS/OS processor numbering without touching the
  // hardware (the paper: the numbering "depends on BIOS settings and may
  // even differ for otherwise identical processors").
  if (const auto en = args.value("--enum")) {
    spec.os_enumeration = hwsim::parse_os_enumeration(*en);
  }
  ToolContext ctx;
  ctx.machine = std::make_unique<hwsim::SimMachine>(std::move(spec));
  ctx.kernel = std::make_unique<ossim::SimKernel>(*ctx.machine, seed);
  return ctx;
}

inline std::string machine_help() {
  std::string out = "  --machine KEY   simulated node (default westmere-ep):";
  for (const auto& p : hwsim::presets::all_presets()) {
    out += " " + p.key;
  }
  return out +
         "\n  --enum MODE     BIOS numbering: smt-last (default), "
         "smt-adjacent, socket-rr\n";
}

/// Write a result block to `path`, throwing the tools' standard error on
/// unopenable files.
inline void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    throw_error(ErrorCode::kInvalidArgument,
                "cannot open output file '" + path + "'");
  }
  out << text;
}

/// Standard error handling for tool main() bodies.
template <typename Fn>
int tool_main(Fn&& body) {
  try {
    return body();
  } catch (const Error& e) {
    std::cerr << "ERROR: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace likwid::tools
