// tool_common.hpp — shared plumbing for the command-line tools: build the
// likwid::api::Session every tool operates on from --machine / --seed /
// --enum (default: the paper's Westmere EP).
#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "api/session.hpp"
#include "cli/args.hpp"
#include "hwsim/presets.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace likwid::tools {

/// The tool's measurement session. --enum permutes the BIOS/OS processor
/// numbering without touching the hardware (the paper: the numbering
/// "depends on BIOS settings and may even differ for otherwise identical
/// processors").
inline std::unique_ptr<api::Session> make_session(
    const cli::ArgParser& args, std::string tool_name,
    const std::string& default_machine = "westmere-ep") {
  return api::Session::configure()
      .name(std::move(tool_name))
      .machine(args.value_or("--machine", default_machine))
      .os_enumeration(args.value_or("--enum", ""))
      .seed(util::parse_u64(args.value_or("--seed", "42")).value_or(42))
      .build();
}

inline std::string machine_help() {
  std::string out = "  --machine KEY   simulated node (default westmere-ep):";
  for (const auto& p : hwsim::presets::all_presets()) {
    out += " " + p.key;
  }
  return out +
         "\n  --enum MODE     BIOS numbering: smt-last (default), "
         "smt-adjacent, socket-rr\n";
}

/// Write a result block to `path`, throwing the tools' standard error on
/// unopenable files.
inline void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    throw_error(ErrorCode::kInvalidArgument,
                "cannot open output file '" + path + "'");
  }
  out << text;
}

/// Standard error handling for tool main() bodies.
template <typename Fn>
int tool_main(Fn&& body) {
  try {
    return body();
  } catch (const Error& e) {
    std::cerr << "ERROR: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace likwid::tools
