// likwid-agent — continuous node monitoring over a fleet of simulated
// machines, the always-on counterpart of likwid-perfctr's one-shot runs
// (after the LIKWID Monitoring Stack, Röhl et al. 2017).
//
// Usage:
//   likwid-agent [--nodes N] [--threads W] [--interval-ms MS]
//                [--duration-ms MS] [--group G[;G2;...]] [--window N]
//                [--ring N] [--no-rotate] [--machine KEY] [--seed S]
//                [--csv FILE] [--xml FILE]
//
// Every machine of the fleet runs a deterministic resident workload; each
// sampling interval the agent closes a counter measurement, reduces the
// derived metrics to node level and retains the sample in a bounded ring.
// On exit it emits windowed min/avg/max/p95 rollups per machine, group and
// metric as a timestamped CSV/XML series. Multiple groups rotate between
// intervals (counter multiplexing at monitoring cadence) unless
// --no-rotate pins the first group.
//
// With --threads W > 1 the fleet runs on the work-stealing task scheduler:
// node tasks start sharded over W per-worker deques, idle workers steal
// from the busiest queue, and each worker folds the samples it produces
// locally (the same rollup rows the serial path emits — bit-equal). A live
// fleet summary goes to stderr while the run is in flight. --threads 0
// uses one worker per hardware thread. --batch pins the task slice length;
// the default 0 autotunes it from the observed fold latency and the chosen
// value is reported in the fleet summary.
//
// --fault-plan=<seed>:<spec> (grammar in fault/plan.hpp) injects
// deterministic faults — failing/stale/saturated MSRs, sampler stalls,
// worker crashes, slow folds — and the agent supervises through
// them: faulted nodes are quarantined (excluded from the rollup series),
// crashed workers restart with backoff (capped by --max-restarts), and a
// NODE_HEALTH report is emitted next to the series.
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>

#include "cli/sinks.hpp"
#include "fault/plan.hpp"
#include "monitor/agent.hpp"
#include "tool_common.hpp"

using namespace likwid;

int main(int argc, char** argv) {
  return tools::tool_main([&]() {
    const cli::ArgParser args(
        argc, argv,
        {"--machines", "--nodes", "--threads", "--batch", "--interval-ms",
         "--duration-ms", "--interval", "--duration", "--group", "--window",
         "--ring", "--machine", "--enum", "--seed", "--csv", "--xml",
         "--fault-plan", "--max-restarts"});
    if (args.has("-h") || args.has("--help")) {
      std::cout
          << "Usage: likwid-agent [--nodes N] [--threads W] [--batch B]\n"
          << "                    [--interval-ms MS] [--duration-ms MS]\n"
          << "                    [--interval DUR] [--duration DUR]\n"
          << "                    [--group G[;G2...]] [--window N]\n"
          << "                    [--ring N] [--no-rotate] [--seed S]\n"
          << "                    [--csv FILE] [--xml FILE]\n"
          << "                    [--fault-plan SEED:SPEC] [--max-restarts N]\n"
          << "Monitors a fleet of simulated nodes continuously and emits\n"
          << "windowed min/avg/max/p95 metric rollups per machine.\n"
          << "--threads W > 1 runs the work-stealing fleet scheduler over\n"
          << "W worker threads (0 = one worker per hardware thread);\n"
          << "--batch B pins the task slice length (0 = autotune);\n"
          << "--machines is accepted as an alias of --nodes.\n"
          << "--interval/--duration accept unit suffixes (500ms, 10s, 5m)\n"
          << "and override the legacy millisecond flags.\n"
          << "--fault-plan injects deterministic faults (e.g.\n"
          << "  7:msr-fail=0.05;msr-stale=0.03;crash=2 — see fault/plan.hpp\n"
          << "for the grammar); the agent quarantines faulted nodes,\n"
          << "restarts crashed workers up to --max-restarts times and\n"
          << "emits a NODE_HEALTH report next to the rollup series.\n"
          << tools::machine_help();
      return 0;
    }

    monitor::AgentConfig cfg;
    // --nodes is the fleet-scheduler name for the flag; --machines, the
    // original spelling, stays as an alias.
    cfg.num_machines = static_cast<int>(
        util::parse_u64(
            args.value_or("--nodes", args.value_or("--machines", "1")))
            .value_or(1));
    cfg.fleet.num_threads = static_cast<int>(
        util::parse_u64(args.value_or("--threads", "1")).value_or(1));
    cfg.fleet.batch_samples = static_cast<std::size_t>(
        util::parse_u64(args.value_or("--batch", "0")).value_or(0));
    const double interval_ms =
        util::parse_double(args.value_or("--interval-ms", "100"))
            .value_or(100);
    const double duration_ms =
        util::parse_double(args.value_or("--duration-ms", "1000"))
            .value_or(1000);
    LIKWID_REQUIRE(interval_ms > 0, "--interval-ms must be positive");
    LIKWID_REQUIRE(duration_ms > 0, "--duration-ms must be positive");
    cfg.duration_seconds = duration_ms / 1000.0;
    cfg.monitor.interval_seconds = interval_ms / 1000.0;
    // --interval/--duration take unit-suffixed durations ("500ms", "10s",
    // "5m") and win over the legacy millisecond flags when both appear.
    if (const auto text = args.value("--interval")) {
      const auto parsed = util::parse_duration_seconds(*text);
      LIKWID_REQUIRE(parsed.has_value() && *parsed > 0,
                     "--interval must be a positive duration (500ms, 10s, 5m)");
      cfg.monitor.interval_seconds = *parsed;
    }
    if (const auto text = args.value("--duration")) {
      const auto parsed = util::parse_duration_seconds(*text);
      LIKWID_REQUIRE(parsed.has_value() && *parsed > 0,
                     "--duration must be a positive duration (500ms, 10s, 5m)");
      cfg.duration_seconds = *parsed;
    }
    cfg.monitor.machine_preset = args.value_or("--machine", "westmere-ep");
    cfg.monitor.os_enumeration = args.value_or("--enum", "");
    cfg.monitor.groups =
        util::split_trimmed(args.value_or("--group", "MEM"), ';');
    cfg.monitor.rotate_groups = !args.has("--no-rotate");
    cfg.monitor.window_samples = static_cast<int>(
        util::parse_u64(args.value_or("--window", "5")).value_or(5));
    cfg.monitor.ring_capacity = static_cast<std::size_t>(
        util::parse_u64(args.value_or("--ring", "4096")).value_or(4096));
    cfg.monitor.seed =
        util::parse_u64(args.value_or("--seed", "42")).value_or(42);
    if (const auto plan_spec = args.value("--fault-plan")) {
      cfg.monitor.fault_plan = std::make_shared<const fault::FaultPlan>(
          fault::FaultPlan::parse(*plan_spec));
      std::cerr << "likwid-agent: fault plan "
                << cfg.monitor.fault_plan->describe() << "\n";
    }
    cfg.fleet.supervision.max_restarts = static_cast<int>(
        util::parse_u64(args.value_or("--max-restarts", "3")).value_or(3));

    monitor::Agent agent(cfg);
    const int workers = agent.planned_workers();
    if (agent.plans_threaded()) {
      // Live fleet summary: a lightweight progress thread reports fold
      // progress to stderr while the workers run, so a long fleet run is
      // visibly alive without disturbing the stdout series.
      agent.set_progress([](const monitor::FleetProgress& p) {
        std::cerr << "likwid-agent: +"
                  << util::format_metric(p.elapsed_seconds) << " s  "
                  << p.samples_folded << " samples folded, "
                  << p.rows_emitted << " rollup rows, "
                  << util::format_metric(
                         p.elapsed_seconds > 0
                             ? static_cast<double>(p.samples_folded) /
                                   p.elapsed_seconds
                             : 0)
                  << " samples/s\n";
      });
    }
    agent.run();

    std::cout << "likwid-agent: monitored " << cfg.num_machines << " x "
              << cfg.monitor.machine_preset << " for "
              << util::format_metric(cfg.duration_seconds) << " s at "
              << util::format_metric(cfg.monitor.interval_seconds * 1000)
              << " ms cadence (" << agent.steps() << " intervals, "
              << (agent.threaded()
                      ? std::to_string(workers) + " work-stealing workers"
                      : std::string("serial"))
              << ")\n";
    const monitor::FleetTransportStats& transport = agent.transport();
    for (const auto& collector : agent.collectors()) {
      const auto& ring = collector->samples();
      const std::size_t id =
          static_cast<std::size_t>(collector->machine_id());
      std::cout << "  machine " << collector->machine_id() << ": "
                << collector->workload().name() << ", " << ring.size()
                << " samples retained, " << ring.dropped() << " dropped";
      if (id < transport.steals_per_machine.size()) {
        std::cout << ", " << transport.steals_per_machine[id]
                  << " task steals";
      }
      std::cout << "\n";
    }
    if (agent.threaded()) {
      // Scheduler summary next to the per-machine retention lines: steals
      // are load balance in action (no data loss); a lost batch means the
      // aggregated windows are biased (quarantine flush, attributed).
      std::cerr << "likwid-agent: fleet: " << transport.slices_folded
                << " task slices folded, " << transport.steals
                << " stolen, batch " << transport.batch_steps
                << (transport.batch_autotuned ? " (autotuned), " : ", ")
                << transport.batches_lost << " batches lost";
      if (transport.batches_lost > 0) {
        std::cerr << " (" << transport.lost_quarantined << " quarantined)";
      }
      std::cerr << "\n";
    }
    if (cfg.monitor.fault_plan != nullptr) {
      const auto quarantined = agent.health().quarantined_nodes();
      std::cerr << "likwid-agent: supervision: "
                << agent.health().worker_restarts() << " worker restart(s), "
                << quarantined.size() << " node(s) quarantined\n";
    }

    const std::vector<monitor::SeriesPoint> rollups = agent.rollups();
    std::cout << "  " << rollups.size() << " rollup rows ("
              << cfg.monitor.window_samples << " samples per window)\n";

    // Under a fault plan the health report travels with the series through
    // every sink: the consumer of a chaos run must see WHO was quarantined
    // next to the windows that exclude them.
    const bool report_health = cfg.monitor.fault_plan != nullptr;
    const api::ResultTable health = agent.health_report();
    bool wrote = false;
    if (const auto csv = args.value("--csv")) {
      std::string body = cli::CsvSink().series(rollups);
      if (report_health) body += cli::CsvSink().measurement(health);
      tools::write_file(*csv, body);
      std::cout << "Series written to " << *csv << "\n";
      wrote = true;
    }
    if (const auto xml = args.value("--xml")) {
      std::string body = cli::XmlSink().series(rollups);
      if (report_health) body += cli::XmlSink().measurement(health);
      tools::write_file(*xml, body);
      std::cout << "Series written to " << *xml << "\n";
      wrote = true;
    }
    if (!wrote) {
      std::cout << cli::CsvSink().series(rollups);
    }
    if (report_health) {
      std::cout << cli::AsciiSink().measurement(health);
    }
    return 0;
  });
}
