// likwid-collectd — the collector daemon of the distributed monitoring
// stack (after the LIKWID Monitoring Stack, Röhl et al. 2017).
//
// Usage:
//   likwid-collectd [--nodes N] [--steps N] [--interval DUR] [--batch N]
//                   [--ingest-threads T] [--producers P] [--ring N]
//                   [--deadline DUR] [--group G[;G2;...]] [--machine KEY]
//                   [--metric NAME] [--top K] [--window N] [--seed S]
//                   [--chunk N] [--raw-chunks N] [--downsample DUR]
//                   [--buckets N] [--summaries N] [--csv FILE] [--xml FILE]
//
// Simulates a fleet of N node agents streaming counter samples over the
// compact binary wire format (per-stream schema dictionary, varint
// sequence deltas, Gorilla-XOR doubles, CRC-framed records) into the
// collector's sharded ingest threads and tiered time-series store, then
// answers the fleet queries over what was ingested: the top-k hottest
// nodes by a metric, per-node windowed min/avg/max/p95 of that metric,
// and a per-node health/loss table. Every dropped frame, decode error
// and retention eviction is counted and reported on stderr — the
// reconciliation is printed so silent loss is impossible to miss.
#include <iostream>
#include <string>

#include "cli/sinks.hpp"
#include "collect/loopback.hpp"
#include "core/name_table.hpp"
#include "monitor/collector.hpp"
#include "tool_common.hpp"

using namespace likwid;

namespace {

double duration_flag(const cli::ArgParser& args, const std::string& flag,
                     double fallback_seconds) {
  const auto text = args.value(flag);
  if (!text) return fallback_seconds;
  const auto parsed = util::parse_duration_seconds(*text);
  LIKWID_REQUIRE(parsed.has_value() && *parsed > 0,
                 (flag + " must be a positive duration (500ms, 10s, 5m)")
                     .c_str());
  return *parsed;
}

}  // namespace

int main(int argc, char** argv) {
  return tools::tool_main([&]() {
    const cli::ArgParser args(
        argc, argv,
        {"--nodes", "--steps", "--interval", "--batch", "--ingest-threads",
         "--producers", "--ring", "--deadline", "--group", "--machine",
         "--metric", "--top", "--window", "--seed", "--chunk",
         "--raw-chunks", "--downsample", "--buckets", "--summaries",
         "--csv", "--xml"});
    if (args.has("-h") || args.has("--help")) {
      std::cout
          << "Usage: likwid-collectd [--nodes N] [--steps N]\n"
          << "                       [--interval DUR] [--batch N]\n"
          << "                       [--ingest-threads T] [--producers P]\n"
          << "                       [--ring N] [--deadline DUR]\n"
          << "                       [--group G[;G2...]] [--machine KEY]\n"
          << "                       [--metric NAME] [--top K] [--window N]\n"
          << "                       [--chunk N] [--raw-chunks N]\n"
          << "                       [--downsample DUR] [--buckets N]\n"
          << "                       [--summaries N] [--seed S]\n"
          << "                       [--csv FILE] [--xml FILE]\n"
          << "Runs the collector daemon against a simulated fleet: N node\n"
          << "streams of the binary wire format are ingested into a tiered\n"
          << "time-series store, then queried (top-k hottest nodes, per-node\n"
          << "windowed stats, per-node health/loss). Durations take unit\n"
          << "suffixes (500ms, 10s, 5m).\n"
          << tools::machine_help();
      return 0;
    }

    collect::LoopbackConfig cfg;
    cfg.fleet.num_nodes = static_cast<std::size_t>(
        util::parse_u64(args.value_or("--nodes", "32")).value_or(32));
    cfg.steps = static_cast<std::size_t>(
        util::parse_u64(args.value_or("--steps", "64")).value_or(64));
    cfg.fleet.interval_seconds = duration_flag(args, "--interval", 0.1);
    cfg.fleet.seed =
        util::parse_u64(args.value_or("--seed", "42")).value_or(42);
    cfg.batch_samples = static_cast<std::size_t>(
        util::parse_u64(args.value_or("--batch", "8")).value_or(8));
    cfg.producer_threads = static_cast<std::size_t>(
        util::parse_u64(args.value_or("--producers", "2")).value_or(2));
    cfg.service.ingest_threads = static_cast<std::size_t>(
        util::parse_u64(args.value_or("--ingest-threads", "2")).value_or(2));
    cfg.service.ring_capacity = static_cast<std::size_t>(
        util::parse_u64(args.value_or("--ring", "64")).value_or(64));
    cfg.service.publish_deadline_seconds =
        duration_flag(args, "--deadline", 0.05);
    cfg.service.store.chunk_points = static_cast<std::size_t>(
        util::parse_u64(args.value_or("--chunk", "64")).value_or(64));
    cfg.service.store.raw_chunks_per_series = static_cast<std::size_t>(
        util::parse_u64(args.value_or("--raw-chunks", "8")).value_or(8));
    cfg.service.store.downsample_seconds =
        duration_flag(args, "--downsample", 10.0);
    cfg.service.store.buckets_per_series = static_cast<std::size_t>(
        util::parse_u64(args.value_or("--buckets", "64")).value_or(64));
    cfg.service.store.summaries_per_series = static_cast<std::size_t>(
        util::parse_u64(args.value_or("--summaries", "32")).value_or(32));
    const int window_samples = static_cast<int>(
        util::parse_u64(args.value_or("--window", "5")).value_or(5));
    const std::size_t top_k = static_cast<std::size_t>(
        util::parse_u64(args.value_or("--top", "5")).value_or(5));

    // The fleet's schemas come from one template collector of the
    // configured machine/groups, so the simulated streams carry the real
    // metric names of the groups they claim to measure.
    monitor::MonitorConfig monitor_cfg;
    monitor_cfg.machine_preset = args.value_or("--machine", "westmere-ep");
    monitor_cfg.groups =
        util::split_trimmed(args.value_or("--group", "MEM"), ';');
    const monitor::Collector schema_template(0, monitor_cfg);
    cfg.fleet.schemas = schema_template.schemas();
    LIKWID_REQUIRE(!cfg.fleet.schemas.empty(), "no event groups configured");

    const auto& first_schema = *cfg.fleet.schemas.front();
    const std::string group = core::resolve_name(first_schema.group_id);
    const std::string metric = args.value_or(
        "--metric", core::resolve_name(first_schema.metric_ids.front()));

    collect::LoopbackCollector collector(cfg);
    collector.run();

    const collect::ProducerStats& producer = collector.producer();
    const collect::CollectorService& service = collector.service();
    const collect::DecodeStats decode = service.decode_stats();
    const collect::StoreStats store = service.store_stats();

    std::cout << "likwid-collectd: ingested " << cfg.fleet.num_nodes
              << " node streams x " << cfg.steps << " samples ("
              << service.config().ingest_threads << " ingest threads, "
              << cfg.producer_threads << " producers)\n";
    const double bytes_per_sample =
        producer.samples_encoded > 0
            ? static_cast<double>(producer.bytes_encoded) /
                  static_cast<double>(producer.samples_encoded)
            : 0;
    std::cout << "  wire: " << producer.frames_sent << " frames, "
              << producer.bytes_encoded << " bytes ("
              << util::format_metric(bytes_per_sample)
              << " bytes/sample on the wire)\n";
    std::cout << "  store: " << store.samples_appended
              << " samples appended, " << store.chunks_closed
              << " chunks closed, " << store.chunks_evicted
              << " downsampled away, " << store.summaries_evicted
              << " summaries evicted\n";

    // Loss reconciliation, printed every run: encoded batches must equal
    // decoded batches plus the attributed losses (backpressure drops and
    // decode errors). Anything else is a bug, not an operational event.
    const std::uint64_t accounted = decode.batches +
                                    producer.batches_dropped +
                                    decode.decode_errors();
    std::cerr << "likwid-collectd: loss accounting: "
              << producer.batches_encoded << " batches encoded = "
              << decode.batches << " decoded + " << producer.batches_dropped
              << " dropped (backpressure) + " << decode.decode_errors()
              << " decode errors"
              << (accounted == producer.batches_encoded
                      ? ""
                      : "  ** MISMATCH **")
              << "\n";

    const collect::QueryEngine query = collector.query(window_samples);
    const api::ResultTable top = query.top_k(group, metric, top_k);
    const api::ResultTable stats = query.fleet_stats(group, metric);
    const api::ResultTable status = query.node_status();

    bool wrote = false;
    if (const auto csv = args.value("--csv")) {
      const cli::CsvSink sink;
      tools::write_file(*csv, sink.measurement(top) +
                                  sink.measurement(stats) +
                                  sink.measurement(status));
      std::cout << "Queries written to " << *csv << "\n";
      wrote = true;
    }
    if (const auto xml = args.value("--xml")) {
      const cli::XmlSink sink;
      tools::write_file(*xml, sink.measurement(top) +
                                  sink.measurement(stats) +
                                  sink.measurement(status));
      std::cout << "Queries written to " << *xml << "\n";
      wrote = true;
    }
    if (!wrote) {
      const cli::AsciiSink sink;
      std::cout << "Top-" << top_k << " hottest nodes by " << metric
                << ":\n"
                << sink.measurement(top) << "Per-node windowed " << metric
                << ":\n"
                << sink.measurement(stats) << "Node status:\n"
                << sink.measurement(status);
    }
    return accounted == producer.batches_encoded ? 0 : 1;
  });
}
