// likwid-bandwidth-map — the paper's Section V plan, implemented:
// "low-level benchmarking with a tool creating a 'bandwidth map'. This
// will allow a quick overview of the cache and memory bandwidth
// bottlenecks in a shared-memory node, including the ccNUMA behavior."
//
// For every physical core the tool streams through working sets sized to
// each cache level (bandwidth ladder), and for every (core, NUMA domain)
// pair it runs a memory stream against data homed on that domain — the
// ccNUMA bandwidth matrix.
//
// Usage: likwid-bandwidth-map [--machine KEY]
#include <iostream>

#include "cli/output.hpp"
#include "core/likwid.hpp"
#include "core/numa.hpp"
#include "perfmodel/exec_model.hpp"
#include "tool_common.hpp"
#include "util/table.hpp"
#include "workloads/stream.hpp"

namespace {

using namespace likwid;

/// Stream bandwidth (GB/s of traffic) for one core against one domain.
/// Each sample runs on a fresh session of the same machine (clean clock
/// and caches, as the paper's one-shot benchmark runs would see).
double domain_stream_gbs(const cli::ArgParser& args, int cpu, int domain) {
  const auto sample =
      tools::make_session(args, "likwid-bandwidth-map sample");
  ossim::SimKernel& kernel = sample->kernel();
  workloads::StreamConfig cfg;
  cfg.array_length = 8'000'000;
  cfg.repetitions = 1;
  cfg.chunk_home_sockets = {domain};
  workloads::StreamTriad triad(cfg);
  workloads::Placement p;
  p.cpus = {cpu};
  kernel.scheduler().add_busy(cpu, 1);
  const double t = run_workload(kernel, triad, p);
  return static_cast<double>(cfg.array_length) *
         workloads::StreamTriad::kTrafficBytesPerIter / t / 1e9;
}

/// Cache-level bandwidth ladder for one core from the machine model.
std::vector<std::pair<std::string, double>> cache_ladder(
    const hwsim::SimMachine& machine) {
  const auto model = perfmodel::default_model(machine.spec());
  const double hz = machine.clock_ghz() * 1e9;
  std::vector<std::pair<std::string, double>> out;
  out.push_back({"L1 <-> core", 2.0 * model.l2_bytes_per_cycle * hz / 1e9});
  out.push_back({"L2 <-> L1", model.l2_bytes_per_cycle * hz / 1e9});
  if (machine.spec().has_data_cache(3)) {
    out.push_back(
        {"L3 <-> L2 (per core)", model.l3_bytes_per_cycle_core * hz / 1e9});
    out.push_back({"L3 aggregate (socket)",
                   model.l3_bytes_per_cycle_socket * hz / 1e9});
  }
  out.push_back({"memory (single thread)", model.mem_bw_thread_gbs});
  out.push_back({"memory (socket saturated)", model.mem_bw_socket_gbs});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  return tools::tool_main([&]() {
    const cli::ArgParser args(argc, argv, {"--machine", "--seed", "--enum"});
    if (args.has("-h") || args.has("--help")) {
      std::cout << "Usage: likwid-bandwidth-map [--machine KEY]\n"
                << tools::machine_help();
      return 0;
    }
    const std::unique_ptr<api::Session> session =
        tools::make_session(args, "likwid-bandwidth-map");
    const core::NodeTopology& topo = session->topology();
    const core::NumaTopology numa = session->numa();
    std::cout << cli::render_header(topo);

    std::cout << "Bandwidth ladder (traffic GB/s):\n";
    util::AsciiTable ladder({"path", "GB/s"});
    for (const auto& [name, gbs] : cache_ladder(session->machine())) {
      ladder.add_row({name, util::strprintf("%.1f", gbs)});
    }
    std::cout << ladder.render();

    std::cout << "\nccNUMA stream bandwidth map (one thread, traffic GB/s);\n"
              << "rows: the core running the stream, columns: the NUMA\n"
              << "domain holding the data:\n";
    std::vector<std::string> headers = {"core \\ domain"};
    for (const auto& d : numa.domains) {
      headers.push_back("node " + std::to_string(d.id));
    }
    util::AsciiTable matrix(headers);
    // One representative physical core per socket keeps the table small.
    for (int socket = 0; socket < topo.num_sockets; ++socket) {
      const int cpu = session->machine().cpus_of_socket(socket).front();
      std::vector<std::string> row = {"core " + std::to_string(cpu) +
                                      " (socket " + std::to_string(socket) +
                                      ")"};
      for (const auto& d : numa.domains) {
        row.push_back(util::strprintf(
            "%.1f", domain_stream_gbs(args, cpu, d.id)));
      }
      matrix.add_row(std::move(row));
    }
    std::cout << matrix.render();
    std::cout << "\nLocal access runs at the single-thread limit; remote\n"
              << "access pays the interconnect penalty (distance matrix in\n"
              << "likwid-topology -n).\n";
    return 0;
  });
}
