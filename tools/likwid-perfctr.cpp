// likwid-perfctr — measure hardware performance counters while running an
// application on the simulated node (Section II-A of the paper).
//
// Usage:
//   likwid-perfctr [--machine KEY] -c 0-3 -g FLOPS_DP[;GROUP2;...]
//                  [-m] [-d SEC] [-S SEC] [--pin LIST] [--threads N]
//                  [--csv | --xml] [-o FILE.{txt,csv,xml}]
//                  APP [app options]
//
// APP is one of the built-in workloads standing in for "./a.out":
//   triad   the OpenMP STREAM triad (options: --n LEN --reps R --cc icc|gcc)
//   jacobi  the 3D Jacobi smoother (--variant threaded|nt|wavefront --size N)
//   sleep   do nothing (node monitoring mode, as in the paper's example)
//
// Multiple groups separated by ';' enable counter multiplexing (round-robin
// rotation with extrapolated counts). -m runs the triad in marker mode with
// the two named regions "Init" and "Benchmark" of the paper's listing.
//
// Extensions beyond the paper's command set, following the conventions the
// real suite adopted later:
//   -d SEC   timeline mode: stream one "TIMELINE,..." CSV row per derived
//            metric roughly every SEC simulated seconds (single set only)
//   -S SEC   stethoscope mode: measure the node for SEC seconds without
//            launching an application (formalizes the paper's `sleep` idiom)
//   -o FILE  write the result block to FILE; the extension picks the
//            format (.csv, .xml, anything else: the ASCII tables)
#include <iostream>

#include "api/result_table.hpp"
#include "cli/csv_output.hpp"
#include "cli/sinks.hpp"
#include "core/likwid.hpp"
#include "tool_common.hpp"
#include "util/cpulist.hpp"
#include "util/table.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/openmp_model.hpp"
#include "workloads/stream.hpp"

namespace {

using namespace likwid;

workloads::Placement make_placement(ossim::SimKernel& kernel,
                                    const std::optional<std::string>& pin,
                                    int threads) {
  ossim::ThreadRuntime* runtime =
      new ossim::ThreadRuntime(kernel.scheduler());  // lives for the run
  std::unique_ptr<core::PinWrapper> wrapper;
  if (pin) {
    core::PinConfig cfg;
    cfg.cpu_list = util::parse_cpu_list(*pin);
    cfg.model = core::ThreadModel::kGcc;
    cfg.skip = core::default_skip_mask(cfg.model);
    wrapper = std::make_unique<core::PinWrapper>(*runtime, cfg);
  }
  const auto team = workloads::launch_openmp_team(
      *runtime, workloads::OpenMpImpl::kGcc, threads);
  workloads::Placement placement;
  placement.cpus = runtime->placement(team.worker_tids);
  wrapper.reset();
  return placement;  // runtime intentionally kept alive (leaked) for run
}

cli::SinkFormat pick_format(const cli::ArgParser& args) {
  if (const auto ofile = args.value("-o")) {
    if (util::ends_with(*ofile, ".xml")) return cli::SinkFormat::kXml;
    if (util::ends_with(*ofile, ".csv")) return cli::SinkFormat::kCsv;
    return cli::SinkFormat::kText;
  }
  if (args.has("--xml")) return cli::SinkFormat::kXml;
  if (args.has("--csv")) return cli::SinkFormat::kCsv;
  return cli::SinkFormat::kText;
}

/// Route the result block to stdout or the -o file.
void emit(const cli::ArgParser& args, const std::string& text) {
  if (const auto ofile = args.value("-o")) {
    tools::write_file(*ofile, text);
    std::cout << "Results written to " << *ofile << "\n";
  } else {
    std::cout << text;
  }
}

/// Streams per-interval metric rows while the measured run progresses:
/// tick() is called between work quanta and emits one CSV row per derived
/// metric once the configured interval has elapsed. The delta machinery
/// lives in core::IntervalSampler; this class only paces and formats.
class TimelineStreamer {
 public:
  TimelineStreamer(api::Session& session, double interval)
      : ctr_(session.counters()), sampler_(session.sampler()),
        interval_(interval) {
    LIKWID_REQUIRE(interval_ > 0, "timeline interval must be positive");
    if (ctr_.num_event_sets() != 1) {
      throw_error(ErrorCode::kInvalidArgument,
                  "timeline mode (-d) requires exactly one event set; "
                  "multiplexing across intervals is not supported");
    }
    last_emit_ = ctr_.kernel().now();
    std::cout << "TIMELINE,time[s],group,metric";
    for (const int cpu : ctr_.cpus()) std::cout << ",core " << cpu;
    std::cout << "\n";
  }

  /// Emit a row block if at least one interval passed (or `force`).
  void tick(bool force = false) {
    const double now = ctr_.kernel().now();
    if (!force && now - last_emit_ < interval_) return;
    // A forced flush right after a paced tick would emit a duplicate
    // zero-length block at the same timestamp.
    if (force && now <= last_emit_) return;
    // Member interval: the slabs and metric batch refill in place, so a
    // long timeline stream stops allocating once warm.
    core::IntervalSampler::Interval& iv = interval_scratch_;
    sampler_.poll_into(iv);
    const std::string group =
        ctr_.group_of(0) ? ctr_.group_of(0)->name : "custom";
    for (const auto& row : iv.metrics) {
      std::cout << "TIMELINE," << util::format_metric(iv.t_end) << ","
                << cli::csv_escape(group) << "," << cli::csv_escape(row.name());
      for (const int cpu : ctr_.cpus()) {
        std::cout << "," << util::format_metric(row.value_or(cpu, 0.0));
      }
      std::cout << "\n";
    }
    last_emit_ = now;
  }

  /// Final flush; leaves the counters stopped.
  void finish() {
    tick(/*force=*/true);
    ctr_.stop();
  }

 private:
  core::PerfCtr& ctr_;
  core::IntervalSampler& sampler_;
  double interval_;
  double last_emit_ = 0;
  core::IntervalSampler::Interval interval_scratch_;
};

}  // namespace

int main(int argc, char** argv) {
  return tools::tool_main([&]() {
    const cli::ArgParser args(
        argc, argv,
        {"--machine", "--seed", "--enum", "-c", "-g", "--pin", "--threads", "--n",
         "--reps", "--cc", "--variant", "--size", "--seconds", "-d", "-S",
         "-o"});
    const bool list_groups = args.has("-a");
    const bool list_events = args.has("-e");
    if (args.has("-h") || args.has("--help") ||
        (!list_groups && !list_events &&
         (!args.value("-c") || !args.value("-g")))) {
      std::cout
          << "Usage: likwid-perfctr -c CPULIST -g GROUP[;GROUP2...] [-m]\n"
          << "                      [-d SEC] [-S SEC] [--pin LIST]\n"
          << "                      [--threads N] [--csv|--xml] [-o FILE] APP\n"
          << "       likwid-perfctr -a   list performance groups\n"
          << "       likwid-perfctr -e   list documented events\n"
          << "APPs: triad [--n LEN --reps R --cc icc|gcc],\n"
          << "      jacobi [--variant threaded|nt|wavefront --size N], sleep\n"
          << tools::machine_help();
      return args.has("-h") || args.has("--help") ? 0 : 1;
    }

    const std::unique_ptr<api::Session> session =
        tools::make_session(args, "likwid-perfctr");

    // -a / -e: the self-describing listings of the real tool — what can
    // be measured on this machine, without opening the vendor manuals.
    if (list_groups || list_events) {
      const hwsim::Arch arch = session->machine().arch();
      std::cout << util::separator_line() << "CPU type:\t"
                << session->machine().spec().name << "\n"
                << util::separator_line();
      if (list_groups) {
        std::cout << "Performance groups on " << hwsim::to_string(arch)
                  << ":\n";
        for (const auto& g : core::supported_groups(arch)) {
          std::cout << util::strprintf("  %-10s %s\n", g.name.c_str(),
                                       g.description.c_str());
        }
      }
      if (list_events) {
        std::cout << "Documented events on " << hwsim::to_string(arch)
                  << ":\n";
        for (const auto& enc : hwsim::event_table(arch)) {
          const char* klass =
              enc.klass == hwsim::CounterClass::kFixed    ? "FIXC"
              : enc.klass == hwsim::CounterClass::kUncore ? "UPMC"
                                                          : "PMC";
          std::cout << util::strprintf("  %-44s %-5s event 0x%03X umask 0x%02X\n",
                                       enc.name.c_str(), klass,
                                       enc.event_code, enc.umask);
        }
      }
      return 0;
    }
    const core::NodeTopology& topo = session->topology();
    std::cout << util::separator_line() << "CPU type:\t" << topo.cpu_name
              << "\n"
              << util::strprintf("CPU clock:\t%.2f GHz\n", topo.clock_ghz)
              << util::separator_line();

    const std::vector<int> cpus = util::parse_cpu_list(*args.value("-c"));
    session->set_cpus(cpus);
    for (const auto& g : util::split_trimmed(*args.value("-g"), ';')) {
      session->add_group(g);
    }
    core::PerfCtr& ctr = session->counters();

    const std::unique_ptr<api::OutputSink> sink =
        cli::make_sink(pick_format(args));
    const auto render_sets = [&]() {
      std::string text;
      for (int set = 0; set < ctr.num_event_sets(); ++set) {
        text += sink->measurement(session->measurement(set));
      }
      return text;
    };

    // Stethoscope mode: measure the running node for a fixed duration, no
    // application launch (the paper's `sleep 1` monitoring idiom as a flag).
    if (const auto steth = args.value("-S")) {
      const double seconds = util::parse_double(*steth).value_or(1.0);
      LIKWID_REQUIRE(seconds > 0, "stethoscope duration must be positive");
      session->start();
      session->kernel().advance_time(seconds);
      session->stop();
      emit(args, render_sets());
      return 0;
    }

    const int threads = static_cast<int>(
        util::parse_u64(args.value_or("--threads",
                                      std::to_string(cpus.size())))
            .value_or(cpus.size()));
    const std::string app =
        args.positional().empty() ? "triad" : args.positional().front();

    workloads::Placement placement = make_placement(
        session->kernel(), args.value("--pin"), threads);

    std::unique_ptr<TimelineStreamer> timeline;
    if (const auto interval = args.value("-d")) {
      if (args.has("-m")) {
        throw_error(ErrorCode::kInvalidArgument,
                    "timeline (-d) and marker (-m) modes are mutually "
                    "exclusive");
      }
      timeline = std::make_unique<TimelineStreamer>(
          *session, util::parse_double(*interval).value_or(1.0));
    }

    /// Quanta/rotation policy shared by the measured apps: multiplexing
    /// rotates sets between quanta; timeline mode slices finer and ticks.
    const auto run_options = [&]() {
      workloads::RunOptions opts;
      opts.quanta = std::max(1, 2 * ctr.num_event_sets());
      if (timeline) opts.quanta = std::max(opts.quanta, 32);
      if (ctr.num_event_sets() > 1) {
        opts.between_quanta = [&ctr](int) { ctr.rotate(); };
      } else if (timeline) {
        opts.between_quanta = [&timeline](int) { timeline->tick(); };
      }
      return opts;
    };

    if (app == "sleep") {
      const double seconds =
          util::parse_double(args.value_or("--seconds", "1")).value_or(1.0);
      session->start();
      if (timeline) {
        const int slices = 16;
        for (int s = 0; s < slices; ++s) {
          session->kernel().advance_time(seconds / slices);
          timeline->tick();
        }
        timeline->finish();
      } else {
        session->kernel().advance_time(seconds);
        session->stop();
      }
    } else if (app == "jacobi") {
      workloads::JacobiConfig cfg;
      cfg.n = static_cast<int>(
          util::parse_u64(args.value_or("--size", "120")).value_or(120));
      const std::string variant = args.value_or("--variant", "threaded");
      cfg.variant = variant == "nt" ? workloads::JacobiVariant::kThreadedNT
                    : variant == "wavefront"
                        ? workloads::JacobiVariant::kWavefront
                        : workloads::JacobiVariant::kThreaded;
      cfg.sweeps = cfg.variant == workloads::JacobiVariant::kWavefront
                       ? threads * 2
                       : 4;
      workloads::JacobiStencil jacobi(cfg);
      session->start();
      run_workload(session->kernel(), jacobi, placement, run_options());
      if (timeline) timeline->finish(); else session->stop();
    } else if (app == "triad") {
      workloads::StreamConfig cfg;
      cfg.array_length = util::parse_u64(args.value_or("--n", "20000000"))
                             .value_or(20000000);
      cfg.repetitions = static_cast<int>(
          util::parse_u64(args.value_or("--reps", "10")).value_or(10));
      cfg.compiler = args.value_or("--cc", "icc") == "gcc"
                         ? workloads::gcc_profile()
                         : workloads::icc_profile();
      workloads::StreamTriad triad(cfg);

      if (args.has("-m")) {
        // Marker mode: the paper's two named regions. The "application"
        // below is the simulated analog of the instrumented a.out; its
        // ambient marker state is this session's, bound the way
        // `likwid-perfctr -m` exports it into a real measured process.
        session->start();
        session->set_current_cpu([&placement]() {
          return placement.cpus.front();
        });
        session->bind_ambient_markers();
        likwid_markerInit(placement.num_workers(), 2);
        const int init_id = likwid_markerRegisterRegion("Init");
        const int bench_id = likwid_markerRegisterRegion("Benchmark");

        workloads::StreamConfig init_cfg = cfg;
        init_cfg.repetitions = 1;
        init_cfg.array_length = cfg.array_length / 100;
        workloads::StreamTriad init_triad(init_cfg);
        for (int t = 0; t < placement.num_workers(); ++t) {
          likwid_markerStartRegion(t, placement.cpus[static_cast<std::size_t>(t)]);
        }
        run_workload(session->kernel(), init_triad, placement);
        for (int t = 0; t < placement.num_workers(); ++t) {
          likwid_markerStopRegion(
              t, placement.cpus[static_cast<std::size_t>(t)], init_id);
        }

        for (int t = 0; t < placement.num_workers(); ++t) {
          likwid_markerStartRegion(t, placement.cpus[static_cast<std::size_t>(t)]);
        }
        run_workload(session->kernel(), triad, placement);
        for (int t = 0; t < placement.num_workers(); ++t) {
          likwid_markerStopRegion(
              t, placement.cpus[static_cast<std::size_t>(t)], bench_id);
        }
        likwid_markerClose();
        session->stop();
        emit(args, sink->regions(session->regions(0)));
        session->release_ambient_markers();
        return 0;
      }

      session->start();
      run_workload(session->kernel(), triad, placement, run_options());
      if (timeline) timeline->finish(); else session->stop();
    } else {
      throw_error(ErrorCode::kInvalidArgument, "unknown app '" + app + "'");
    }

    emit(args, render_sets());
    return 0;
  });
}
