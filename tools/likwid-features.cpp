// likwid-features — view and toggle hardware prefetchers and switchable
// processor features (Section II-D of the paper).
//
// Usage:
//   likwid-features [--machine core2-duo] [-c CPU]
//   likwid-features -u CL_PREFETCHER     # disable
//   likwid-features -e CL_PREFETCHER     # enable
#include <iostream>

#include "cli/output.hpp"
#include "cli/xml_output.hpp"
#include "core/likwid.hpp"
#include "tool_common.hpp"

int main(int argc, char** argv) {
  using namespace likwid;
  return tools::tool_main([&]() {
    const cli::ArgParser args(argc, argv,
                              {"--machine", "--seed", "--enum", "-c", "-e", "-u"});
    if (args.has("-h") || args.has("--help")) {
      std::cout << "Usage: likwid-features [--machine KEY] [-c CPU]\n"
                << "                       [-e PREFETCHER] [-u PREFETCHER]\n"
                << "PREFETCHER: HW_PREFETCHER CL_PREFETCHER DCU_PREFETCHER "
                   "IP_PREFETCHER\n"
                << tools::machine_help();
      return 0;
    }
    // The paper demonstrates likwid-features on a Core 2 65nm machine.
    const std::unique_ptr<api::Session> session = tools::make_session(
        args, "likwid-features", /*default_machine=*/"core2-duo");

    const int cpu = static_cast<int>(
        util::parse_u64(args.value_or("-c", "0")).value_or(0));
    core::Features features = session->features(cpu);
    const core::NodeTopology& topo = session->topology();

    if (const auto name = args.value("-u")) {
      features.set_prefetcher(core::parse_prefetcher(*name), false);
      std::cout << *name << ": disabled\n";
      return 0;
    }
    if (const auto name = args.value("-e")) {
      features.set_prefetcher(core::parse_prefetcher(*name), true);
      std::cout << *name << ": enabled\n";
      return 0;
    }
    if (args.has("--xml")) {
      std::cout << cli::xml_features(topo, cpu, features.report());
      return 0;
    }
    std::cout << cli::render_features(topo, cpu, features.report());
    return 0;
  });
}
