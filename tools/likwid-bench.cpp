// likwid-bench — threaded microbenchmarking with workgroup syntax (the
// companion paper's benchmarking tool: "LIKWID: Lightweight Performance
// Tools", arXiv:1104.4874, Section 2.6).
//
// Usage:
//   likwid-bench -t KERNEL -w DOMAIN:SIZE[:NTHREADS[:CHUNK:STRIDE]]
//                [-i SWEEPS] [-g GROUP[;GROUP2...]] [--validate]
//                [--machine KEY] [--csv | --xml] [-o FILE.{txt,csv,xml}]
//   likwid-bench -a   list the registered kernels
//   likwid-bench -p   list the affinity domains of the machine
//
// The workgroup pins KERNEL's threads into an affinity domain (N, S<k>,
// M<k>, C<k>) resolved from the probed topology, slices SIZE evenly over
// the threads, auto-calibrates the sweep count (-i overrides), and
// reports per-thread bandwidth and FLOPS through the OutputSink model.
// With -g the run measures itself through a likwid::api::Session, so any
// perfctr group rides on top; --validate cross-checks the reported
// bandwidth against the perfmodel::bandwidth machine-model prediction and
// fails (exit 1) outside the documented tolerance.
#include <iostream>

#include "cli/sinks.hpp"
#include "microbench/runner.hpp"
#include "tool_common.hpp"
#include "util/cpulist.hpp"
#include "util/table.hpp"

namespace {

using namespace likwid;

cli::SinkFormat pick_format(const cli::ArgParser& args) {
  if (const auto ofile = args.value("-o")) {
    if (util::ends_with(*ofile, ".xml")) return cli::SinkFormat::kXml;
    if (util::ends_with(*ofile, ".csv")) return cli::SinkFormat::kCsv;
    return cli::SinkFormat::kText;
  }
  if (args.has("--xml")) return cli::SinkFormat::kXml;
  if (args.has("--csv")) return cli::SinkFormat::kCsv;
  return cli::SinkFormat::kText;
}

void emit(const cli::ArgParser& args, const std::string& text) {
  if (const auto ofile = args.value("-o")) {
    tools::write_file(*ofile, text);
    std::cout << "Results written to " << *ofile << "\n";
  } else {
    std::cout << text;
  }
}

}  // namespace

int main(int argc, char** argv) {
  return tools::tool_main([&]() {
    const cli::ArgParser args(argc, argv,
                              {"--machine", "--seed", "--enum", "-w", "-t",
                               "-i", "-g", "--target", "-o"});
    const bool list_kernels = args.has("-a");
    const bool list_domains = args.has("-p");
    if (args.has("-h") || args.has("--help") ||
        (!list_kernels && !list_domains && !args.value("-w"))) {
      std::cout
          << "Usage: likwid-bench -t KERNEL "
             "-w DOMAIN:SIZE[:NTHREADS[:CHUNK:STRIDE]]\n"
          << "                    [-i SWEEPS] [-g GROUP[;GROUP2...]]\n"
          << "                    [--validate] [--csv|--xml] [-o FILE]\n"
          << "       likwid-bench -a   list kernels\n"
          << "       likwid-bench -p   list affinity domains\n"
          << "Domains: N (node), S<k> (socket), M<k> (memory domain),\n"
          << "         C<k> (last-level cache group); sizes like 64kB,\n"
          << "         2MB, 1GB split evenly over the threads.\n"
          << tools::machine_help();
      return args.has("-h") || args.has("--help") ? 0 : 1;
    }

    if (list_kernels) {
      std::cout << "Registered likwid-bench kernels:\n";
      for (const auto& k : microbench::kernel_registry()) {
        std::cout << util::strprintf(
            "  %-14s %-38s %d stream%s, %g flops/iter\n", k.name.c_str(),
            k.description.c_str(), k.streams, k.streams == 1 ? "" : "s",
            k.flops_per_iter);
      }
      return 0;
    }

    const std::unique_ptr<api::Session> session =
        tools::make_session(args, "likwid-bench");
    const core::NodeTopology& topo = session->topology();

    if (list_domains) {
      std::cout << "Affinity domains on " << topo.cpu_name << ":\n";
      for (const auto& [label, cpus] : microbench::affinity_domains(topo)) {
        std::cout << util::strprintf("  %-4s %2zu threads: %s\n",
                                     label.c_str(), cpus.size(),
                                     util::format_cpu_list(cpus).c_str());
      }
      return 0;
    }

    microbench::BenchOptions options;
    options.workgroup = microbench::parse_workgroup(*args.value("-w"));
    options.kernel = args.value_or("-t", "stream_triad");
    options.sweeps = static_cast<int>(
        util::parse_u64(args.value_or("-i", "0")).value_or(0));
    options.target_seconds =
        util::parse_double(args.value_or("--target", "1")).value_or(1.0);
    if (const auto groups = args.value("-g")) {
      options.groups = util::split_trimmed(*groups, ';');
    }
    options.validate = args.has("--validate");

    std::cout << util::separator_line() << "CPU type:\t" << topo.cpu_name
              << "\n"
              << util::strprintf("CPU clock:\t%.2f GHz\n", topo.clock_ghz)
              << util::separator_line();

    const microbench::BenchResult result =
        microbench::run_bench(*session, options);

    std::cout << "Kernel:\t\t" << result.kernel << "\n"
              << "Workgroup:\t" << result.workgroup.spec.domain << ", "
              << util::format_size(result.workgroup.spec.size_bytes) << " on "
              << result.workgroup.num_threads() << " threads (cpus "
              << util::format_cpu_list(result.workgroup.cpus) << ")\n"
              << "Sweeps:\t\t" << result.sweeps << " x "
              << result.elements_per_thread << " elements/thread\n"
              << util::strprintf("Runtime:\t%.4f s\n", result.seconds)
              << util::strprintf("Bandwidth:\t%.0f MByte/s\n",
                                 result.bandwidth_mbs)
              << util::strprintf("MFlops/s:\t%.0f\n", result.mflops)
              << util::strprintf("Traffic:\t%.2f GByte/s\n",
                                 result.traffic_gbs)
              << util::separator_line();

    const std::unique_ptr<api::OutputSink> sink =
        cli::make_sink(pick_format(args));
    std::string text = sink->measurement(result.table);
    for (const api::ResultTable& m : result.measurements) {
      text += sink->measurement(m);
    }
    emit(args, text);

    if (result.validation) {
      const microbench::ModelValidation& v = *result.validation;
      std::cout << util::separator_line()
                << "Model validation (perfmodel::bandwidth):\n"
                << util::strprintf(
                       "  %s-bound: measured %.0f MByte/s, predicted %.0f "
                       "MByte/s, error %.1f%% (tolerance %.0f%%): %s\n",
                       v.bound.c_str(), v.measured_mbs, v.predicted_mbs,
                       100.0 * v.rel_error, 100.0 * v.tolerance,
                       v.pass ? "OK" : "FAIL");
      if (!v.pass) return 1;
    }
    return 0;
  });
}
