// likwid-mpirun — launch a hybrid MPI+threads job on the simulated
// cluster with per-rank pinning and optional per-rank counter measurement.
//
// The paper closes with the goal of combining LIKWID with MPI profiling
// ("to facilitate the collection of performance counter data in MPI
// programs", Section V); Section II-C gives the manual building block:
//
//   $ export OMP_NUM_THREADS=8
//   $ mpiexec -n 64 -pernode likwid-pin -c 0-7 -s 0x3 ./a.out
//
// This tool automates that composition. Usage:
//
//   likwid-mpirun -np N [--nodes M] [-pernode | -npernode K] [--map rr]
//                 [--omp gcc|intel|intel-mpi] [--threads T]
//                 [--pin [-c LIST] [-s MASK]] [-g GROUP]
//                 [--machine KEY] [--n LEN --reps R --cc icc|gcc]
//
// Without -g it prints the launch plan (rank -> node, pinned cpus, skipped
// service threads) and the per-rank STREAM triad bandwidth. With -g it
// additionally measures the group on every rank's workers.
#include <iostream>

#include "mpisim/launcher.hpp"
#include "tool_common.hpp"
#include "util/cpulist.hpp"
#include "util/table.hpp"

namespace {

using namespace likwid;

workloads::OpenMpImpl parse_omp(const std::string& text) {
  if (text == "gcc") return workloads::OpenMpImpl::kGcc;
  if (text == "intel") return workloads::OpenMpImpl::kIntel;
  if (text == "intel-mpi") return workloads::OpenMpImpl::kIntelMpi;
  throw_error(ErrorCode::kInvalidArgument,
              "unknown OpenMP implementation '" + text +
                  "' (gcc, intel, intel-mpi)");
}

}  // namespace

int main(int argc, char** argv) {
  return tools::tool_main([&]() {
    const cli::ArgParser args(
        argc, argv,
        {"--machine", "--seed", "-np", "--nodes", "-npernode", "--map",
         "--omp", "--threads", "-c", "-s", "-g", "--n", "--reps", "--cc"});
    if (args.has("-h") || args.has("--help") || !args.value("-np")) {
      std::cout
          << "Usage: likwid-mpirun -np N [--nodes M] [-pernode|-npernode K]\n"
          << "                     [--map rr] [--omp gcc|intel|intel-mpi]\n"
          << "                     [--threads T] [--pin [-c LIST] [-s MASK]]\n"
          << "                     [-g GROUP] [--n LEN --reps R --cc icc|gcc]\n"
          << tools::machine_help();
      return args.has("-h") || args.has("--help") ? 0 : 1;
    }

    const int np = static_cast<int>(
        util::parse_u64(*args.value("-np")).value_or(1));
    const int nodes = static_cast<int>(
        util::parse_u64(args.value_or("--nodes", "1")).value_or(1));

    mpisim::MpirunConfig cfg;
    cfg.np = np;
    cfg.pernode = args.has("-pernode");
    cfg.npernode = static_cast<int>(
        util::parse_u64(args.value_or("-npernode", "0")).value_or(0));
    if (args.value_or("--map", "block") == "rr") {
      cfg.mapping = mpisim::RankMapping::kRoundRobin;
    }
    cfg.omp = parse_omp(args.value_or("--omp", "gcc"));
    cfg.omp_threads = static_cast<int>(
        util::parse_u64(args.value_or("--threads", "1")).value_or(1));
    cfg.pin = args.has("--pin");
    if (const auto list = args.value("-c")) {
      cfg.node_cpu_list = util::parse_cpu_list(*list);
    }
    if (const auto mask = args.value("-s")) {
      cfg.skip = util::SkipMask::parse(*mask);
    }

    const std::string key = args.value_or("--machine", "westmere-ep");
    const std::uint64_t seed =
        util::parse_u64(args.value_or("--seed", "42")).value_or(42);
    mpisim::Cluster cluster(nodes, hwsim::presets::preset_by_key(key), seed);

    mpisim::MpiJob job(cluster, cfg);

    std::cout << util::separator_line()
              << "likwid-mpirun: " << np << " rank" << (np == 1 ? "" : "s")
              << " on " << nodes << " node" << (nodes == 1 ? "" : "s")
              << " (" << key << "), " << cfg.omp_threads
              << " thread" << (cfg.omp_threads == 1 ? "" : "s")
              << " per rank\n"
              << util::separator_line();
    for (const auto& rank : job.ranks()) {
      std::cout << "Rank " << rank.plan.rank << " -> node " << rank.plan.node
                << " slot " << rank.plan.slot << ": workers on cpus";
      for (const int c : rank.worker_cpus) std::cout << " " << c;
      if (rank.wrapper) {
        std::cout << " (pinned " << rank.wrapper->pinned_count()
                  << ", skipped " << rank.wrapper->skipped_count()
                  << " service thread"
                  << (rank.wrapper->skipped_count() == 1 ? "" : "s") << ")";
      }
      std::cout << "\n";
    }

    workloads::StreamConfig stream;
    stream.array_length = util::parse_u64(args.value_or("--n", "4000000"))
                              .value_or(4000000);
    stream.repetitions = static_cast<int>(
        util::parse_u64(args.value_or("--reps", "5")).value_or(5));
    stream.compiler = args.value_or("--cc", "icc") == "gcc"
                          ? workloads::gcc_profile()
                          : workloads::icc_profile();

    if (const auto group = args.value("-g")) {
      std::cout << util::separator_line() << "Measuring group " << *group
                << " per rank\n" << util::separator_line();
      for (const auto& m : job.measure_triad(*group, stream)) {
        std::cout << "Rank " << m.rank << " (node " << m.node << "):\n";
        for (const auto& row : m.metrics) {
          double max_v = 0;
          for (const double v : row.values) max_v = std::max(max_v, v);
          std::cout << util::strprintf("  %-32s %14.6g\n", row.name().c_str(),
                                       max_v);
        }
      }
      return 0;
    }

    const auto seconds = job.run_triad(stream);
    std::cout << util::separator_line();
    for (std::size_t r = 0; r < seconds.size(); ++r) {
      workloads::StreamTriad triad(stream);
      std::cout << util::strprintf(
          "Rank %zu STREAM triad: %8.0f MB/s\n", r,
          triad.reported_bandwidth_mbs(seconds[r]));
    }
    return 0;
  });
}
