// likwid-topology — probe and report the thread and cache topology of the
// (simulated) node, exactly as in Section II-B of the paper.
//
// Usage: likwid-topology [--machine KEY] [-c] [-g] [-n] [--xml] [--csv]
//   -c     extended cache parameters
//   -g     ASCII-art socket/cache diagram
//   -n     NUMA domains (the paper's Section V near-term goal)
//   --xml  machine-readable output (Section V: XML support)
//   --csv  spreadsheet-friendly output
#include <iostream>

#include "cli/csv_output.hpp"
#include "cli/output.hpp"
#include "cli/xml_output.hpp"
#include "tool_common.hpp"

int main(int argc, char** argv) {
  using namespace likwid;
  return tools::tool_main([&]() {
    const cli::ArgParser args(argc, argv, {"--machine", "--seed", "--enum"});
    if (args.has("-h") || args.has("--help")) {
      std::cout << "Usage: likwid-topology [--machine KEY] [-c] [-g] [-n] "
                   "[--xml] [--csv]\n"
                << "  -c     extended cache parameters\n"
                << "  -g     ASCII art of the socket topology\n"
                << "  -n     NUMA domain report\n"
                << "  --xml  XML output\n"
                << "  --csv  CSV output\n"
                << tools::machine_help();
      return 0;
    }
    const std::unique_ptr<api::Session> session =
        tools::make_session(args, "likwid-topology");
    const core::NodeTopology& topo = session->topology();
    if (args.has("--csv")) {
      std::cout << cli::csv_topology(topo);
      return 0;
    }
    if (args.has("--xml")) {
      std::cout << cli::xml_topology(topo);
      if (args.has("-n")) {
        std::cout << cli::xml_numa(session->numa());
      }
      return 0;
    }
    std::cout << cli::render_topology_report(topo, args.has("-c"));
    if (args.has("-n")) {
      std::cout << cli::render_numa(session->numa());
    }
    if (args.has("-g")) {
      std::cout << cli::render_topology_ascii(topo);
    }
    return 0;
  });
}
