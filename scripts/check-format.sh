#!/usr/bin/env bash
# check-format.sh — clang-format check (no reformatting) over the paths
# that have been brought to .clang-format cleanliness. Scoped so adopting
# the format check did not force a reformat churn across the whole tree;
# extend FORMAT_PATHS as more files are cleaned up.
#
# Usage: scripts/check-format.sh [clang-format-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${1:-clang-format}"

FORMAT_PATHS=(
  src/monitor/spsc_ring.hpp
  src/monitor/ring_buffer.hpp
  bench/micro_agent_fleet.cpp
  tests/fleet_stress_test.cpp
)

"$CLANG_FORMAT" --version

status=0
for path in "${FORMAT_PATHS[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$path"; then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "clang-format check failed; run:" >&2
  echo "  $CLANG_FORMAT -i ${FORMAT_PATHS[*]}" >&2
fi
exit "$status"
