#!/usr/bin/env bash
# check-docs.sh — keep the docs/ suite honest. Three checks, all of which
# fail CI rather than letting the documentation rot quietly:
#
#   1. Subsystem coverage: every src/*/ subsystem directory is mentioned
#      in docs/ARCHITECTURE.md (the one-page system map must stay a map
#      of the WHOLE system).
#   2. Link resolution: every relative markdown link in docs/*.md and
#      README.md points at a file that exists (anchors stripped).
#   3. Stale references: every backtick-quoted repo path (src/...,
#      tests/..., tools/..., bench/..., scripts/..., docs/...,
#      examples/...) in docs/*.md and README.md resolves. Renaming a
#      source file without updating the docs that cite it fails here.
#
# Usage: scripts/check-docs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
fail() {
  echo "check-docs: $1" >&2
  status=1
}

# --- 1. every src subsystem appears in the architecture map ------------
for dir in src/*/; do
  subsystem="${dir%/}"
  if ! grep -q "$subsystem" docs/ARCHITECTURE.md; then
    fail "docs/ARCHITECTURE.md does not mention subsystem $subsystem"
  fi
done

DOCS=(docs/*.md README.md)

# --- 2. relative markdown links resolve --------------------------------
for doc in "${DOCS[@]}"; do
  dir="$(dirname "$doc")"
  # [text](target) pairs; external links and pure anchors are skipped.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      fail "$doc links to missing file: $target"
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed 's/^](//;s/)$//')
done

# --- 3. backtick-quoted repo paths exist -------------------------------
for doc in "${DOCS[@]}"; do
  while IFS= read -r ref; do
    # Globs and illustrative patterns are not concrete references.
    case "$ref" in
      *'*'*|*'...'*) continue ;;
    esac
    if [ ! -e "$ref" ]; then
      fail "$doc references missing path: $ref"
    fi
  done < <(grep -oE '`(src|tests|tools|bench|scripts|docs|examples)/[^` ]+`' "$doc" |
           tr -d '`' | sort -u)
done

if [ "$status" -eq 0 ]; then
  echo "check-docs: OK (subsystem coverage, links, path references)"
fi
exit "$status"
