#!/usr/bin/env bash
# run-benches.sh — produce the repo-root perf trajectory.
#
# Runs every --smoke-capable bench harness and writes its BENCH_*.json
# next to this repo's README, where the files are COMMITTED — the point
# of the trajectory is that every checkout carries the numbers of the
# revision it came from, not only CI logs. CI runs the same binaries with
# the same flags and asserts the schemas and the gates.
#
# Usage:
#   scripts/run-benches.sh            # smoke sizes (what CI runs)
#   FULL=1 scripts/run-benches.sh     # full-size runs
#   BUILD_DIR=out scripts/run-benches.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
SMOKE_FLAG="--smoke"
if [ "${FULL:-0}" = "1" ]; then
  SMOKE_FLAG=""
fi

# Every harness that understands --smoke/--out and emits a BENCH JSON.
BENCHES=(
  micro_metric_pipeline
  micro_agent_fleet
  micro_likwid_bench
  micro_collector_ingest
)

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
targets=()
for bench in "${BENCHES[@]}"; do
  targets+=("bench_${bench}")
done
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${targets[@]}"

for bench in "${BENCHES[@]}"; do
  out="BENCH_${bench#micro_}.json"
  # The collector bench is named for the subsystem, not the harness.
  [ "$bench" = "micro_collector_ingest" ] && out="BENCH_collector.json"
  # shellcheck disable=SC2086 # SMOKE_FLAG is intentionally word-split
  "./$BUILD_DIR/bench_${bench}" $SMOKE_FLAG --out "$out"
done

echo
echo "Trajectory files:"
ls -l BENCH_*.json

# The README perf table is generated from these files; keep it in step so
# a trajectory refresh never leaves the prose stale (CI checks the sync).
scripts/bench-table.sh
