#!/usr/bin/env bash
# run-tidy.sh — clang-tidy over the paths that have been brought to
# .clang-tidy cleanliness, against the compile_commands.json of an
# existing build tree. Scoped like scripts/check-format.sh so adopting
# the check did not demand a whole-tree cleanup at once; extend
# TIDY_PATHS as more files are audited.
#
# Usage: scripts/run-tidy.sh [build-dir] [clang-tidy-binary]
#   build-dir defaults to ./build and must have been configured with
#   -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the CI job does this).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CLANG_TIDY="${2:-clang-tidy}"

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "error: $BUILD_DIR/compile_commands.json not found; configure with" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

TIDY_PATHS=(
  src/analysis/lint.cpp
  src/api/likwid_c.cpp
  src/api/session.cpp
  src/collect/codec.cpp
  src/collect/loopback.cpp
  src/collect/query.cpp
  src/collect/service.cpp
  src/collect/simfleet.cpp
  src/collect/store.cpp
  src/collect/wire.cpp
  src/core/batch_program.cpp
  src/core/compiled_metric.cpp
  src/core/name_table.cpp
  src/util/alloc_hook.cpp
  src/fault/msr_fault.cpp
  src/fault/plan.cpp
  src/monitor/agent.cpp
  src/monitor/collector.cpp
  src/monitor/health.cpp
  tools/likwid-agent.cpp
  tools/likwid-lint.cpp
)

"$CLANG_TIDY" --version

status=0
for path in "${TIDY_PATHS[@]}"; do
  echo "== clang-tidy $path"
  if ! "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "$path"; then
    status=1
  fi
done

exit "$status"
